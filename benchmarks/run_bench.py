#!/usr/bin/env python
"""Figure-2 perf trajectory runner: PageRank / SSSP / CC on the standard
generated graphs, batch vs. scalar data plane.

Writes a ``BENCH_*.json`` with wall time per superstep, rows/sec, and
vertices/sec for every (graph, algorithm, compute-path) cell, so future
PRs have a trajectory point to compare against::

    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_PR1.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick   # CI smoke

``--quick`` runs a tiny scale, asserts batch/scalar agreement and
sql/shard data-plane agreement, checks the batch path is not slower than
scalar and the shard plane not slower than the SQL plane (loud
perf-regression tripwires), and does not write a file unless ``--out``
is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any

import numpy as np

from repro.bench.figure2 import sssp_source
from repro.bench.harness import bench_graphs, pagerank_iterations
from repro.core import Vertexica, VertexicaConfig
from repro.datasets.generators import Graph
from repro.datasets.relational import load_graph_as_schema, load_social_schema
from repro.graphview import (
    CoEdgeSpec,
    EdgeSpec,
    ExtractionOptions,
    GraphView,
    GraphViewHandle,
    NodeSpec,
)
from repro.programs import (
    CollaborativeFiltering,
    ConnectedComponents,
    FeaturePropagation,
    MultiSourceSSSP,
    PageRank,
    ShortestPaths,
)

MODES = ("batch", "scalar")


ALGORITHMS = ("pagerank", "sssp", "cc")


def _program_for(algorithm: str, graph: Graph):
    if algorithm == "pagerank":
        return PageRank(iterations=pagerank_iterations())
    if algorithm == "sssp":
        return ShortestPaths(source=sssp_source(graph))
    if algorithm == "cc":
        return ConnectedComponents()
    raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def _fingerprint(values: dict[int, Any]) -> float:
    total = 0.0
    for value in values.values():
        if isinstance(value, (int, float)) and value == value and value != float("inf"):
            total += float(value)
    return total


def run_cell(
    graph: Graph, algorithm: str, mode: str, n_partitions: int, repeat: int = 1
) -> dict[str, Any]:
    """One (graph, algorithm, compute-path) measurement.

    With ``repeat > 1`` the run with the smallest superstep wall time
    wins — best-of-N suppresses scheduler jitter, the usual practice for
    sub-second benchmark cells.
    """
    vx = Vertexica(
        config=VertexicaConfig(n_partitions=n_partitions, compute_strategy=mode)
    )
    handle = vx.load_graph(
        graph.name,
        graph.src,
        graph.dst,
        num_vertices=graph.num_vertices,
        symmetrize=algorithm == "cc",
    )
    best: tuple[float, Any] | None = None
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        result = vx.run(handle, _program_for(algorithm, graph))
        total = time.perf_counter() - started
        step_secs = sum(s.seconds for s in result.stats.supersteps)
        if best is None or step_secs < best[0]:
            best = (step_secs, (total, result))
    total, result = best[1]
    stats = result.stats
    superstep_seconds = sum(s.seconds for s in stats.supersteps)
    return {
        "graph": graph.name,
        "algorithm": algorithm,
        "mode": mode,
        "num_vertices": handle.num_vertices,
        "num_edges": handle.num_edges,
        "n_supersteps": stats.n_supersteps,
        "total_seconds": round(total, 6),
        "superstep_seconds": round(superstep_seconds, 6),
        "vertices_per_sec": round(stats.vertices_per_sec, 1),
        "rows_per_sec": round(stats.rows_per_sec, 1),
        "fingerprint": _fingerprint(result.values),
        "supersteps": [
            {
                "superstep": s.superstep,
                "seconds": round(s.seconds, 6),
                "compute_path": s.compute_path,
                "active_vertices": s.active_vertices,
                "rows_in": s.rows_in,
                "rows_out": s.rows_out,
                "messages_out": s.messages_out,
                "vertices_per_sec": round(s.vertices_per_sec, 1),
                "rows_per_sec": round(s.rows_per_sec, 1),
            }
            for s in stats.supersteps
        ],
    }


def run_edge_cache_cell(
    graph: Graph, algorithm: str, n_partitions: int, repeat: int = 1
) -> dict[str, Any]:
    """Edge-cache ablation: superstep seconds with the cross-superstep
    edge sub-batch cache on vs off (union input format, batch compute)."""
    cells = {}
    for cached in (True, False):
        vx = Vertexica(
            config=VertexicaConfig(n_partitions=n_partitions, cache_edges=cached)
        )
        handle = vx.load_graph(
            graph.name,
            graph.src,
            graph.dst,
            num_vertices=graph.num_vertices,
            symmetrize=algorithm == "cc",
        )
        best: dict[str, Any] | None = None
        for _ in range(max(repeat, 1)):
            result = vx.run(handle, _program_for(algorithm, graph))
            step_secs = sum(s.seconds for s in result.stats.supersteps)
            cell = {
                "superstep_seconds": round(step_secs, 6),
                "fingerprint": _fingerprint(result.values),
                "rows_in_per_superstep": [s.rows_in for s in result.stats.supersteps],
            }
            if best is None or step_secs < best["superstep_seconds"]:
                best = cell
        cells["cached" if cached else "uncached"] = best
    ratio = (
        cells["uncached"]["superstep_seconds"] / cells["cached"]["superstep_seconds"]
        if cells["cached"]["superstep_seconds"]
        else float("inf")
    )
    return {
        "graph": graph.name,
        "algorithm": algorithm,
        "speedup_uncached_over_cached": round(ratio, 2),
        "fingerprints_match": abs(
            cells["cached"]["fingerprint"] - cells["uncached"]["fingerprint"]
        )
        <= 1e-9 * max(1.0, abs(cells["uncached"]["fingerprint"])),
        **{f"{k}_superstep_seconds": v["superstep_seconds"] for k, v in cells.items()},
        "rows_in_cached": cells["cached"]["rows_in_per_superstep"][:3],
        "rows_in_uncached": cells["uncached"]["rows_in_per_superstep"][:3],
    }


def run_workers_scaling_cell(
    graph: Graph,
    algorithm: str,
    n_partitions: int,
    repeat: int = 1,
    workers: tuple[int, ...] = (1, 2, 4),
) -> dict[str, Any]:
    """Parallel-worker scaling across execution strategies (the PR-4
    cell, extended with the PR-8 process plane).

    Sweeps ``n_workers`` over the SQL-staged plane (whose global
    partition lexsort serializes each superstep), the shard-resident
    plane on the thread executor (shard tasks are barrier-free and numpy
    kernels release the GIL), and the shard plane on the **process**
    executor (shared-memory shard state, spawned workers — the strategy
    that escapes the GIL entirely), all under ``superstep_sync="halt"``.
    Asserts every cell lands on the same fingerprint.  Note the process
    rows only show a real win on multi-core hardware: on a single-core
    host the workers time-slice one CPU and the pipe/dispatch overhead is
    pure cost (the report records ``cpu_count`` for exactly this reason).
    """
    # One partition count for every cell — varying it with the worker
    # count would measure partitioning, not worker scaling.
    n_partitions = max(n_partitions, 2 * max(workers))
    cells: dict[str, dict[str, float]] = {}
    fingerprints: list[float] = []
    sweeps = (
        ("sql", "sql", "auto"),
        ("shards", "shards", "auto"),
        ("shards_processes", "shards", "processes"),
    )
    for label, plane, executor in sweeps:
        per_worker: dict[str, float] = {}
        for n_workers in workers:
            vx = Vertexica(
                config=VertexicaConfig(
                    n_partitions=n_partitions,
                    n_workers=n_workers,
                    executor=executor,
                    data_plane=plane,
                    superstep_sync="halt",
                )
            )
            handle = vx.load_graph(
                f"{graph.name}_{label}_w{n_workers}",
                graph.src,
                graph.dst,
                num_vertices=graph.num_vertices,
                symmetrize=algorithm == "cc",
            )
            best = float("inf")
            for _ in range(max(repeat, 1)):
                result = vx.run(handle, _program_for(algorithm, graph))
                step_secs = sum(s.seconds for s in result.stats.supersteps)
                if step_secs < best:
                    best = step_secs
                    fingerprint = _fingerprint(result.values)
            per_worker[str(n_workers)] = round(best, 6)
            fingerprints.append(fingerprint)
        cells[label] = per_worker
    base = str(workers[0])
    peak = str(workers[-1])

    def _scaling(label: str) -> float:
        return (
            round(cells[label][base] / cells[label][peak], 2)
            if cells[label][peak]
            else float("inf")
        )

    return {
        "graph": graph.name,
        "algorithm": algorithm,
        "superstep_seconds": cells,
        "speedup_shards_over_sql_1w": round(
            cells["sql"][base] / cells["shards"][base], 2
        )
        if cells["shards"][base]
        else float("inf"),
        "sql_scaling_1w_over_4w": _scaling("sql"),
        "shards_scaling_1w_over_4w": _scaling("shards"),
        "processes_scaling_1w_over_4w": _scaling("shards_processes"),
        "cpu_count": os.cpu_count() or 1,
        "fingerprints_match": all(
            abs(fp - fingerprints[0]) <= 1e-9 * max(1.0, abs(fingerprints[0]))
            for fp in fingerprints
        ),
    }


def run_cf_codec_cell(
    graph: Graph,
    n_partitions: int,
    repeat: int = 1,
    rank: int = 8,
    iterations: int = 3,
) -> dict[str, Any]:
    """Collaborative-filtering superstep timing: JSON-in-VARCHAR codec vs
    the dense vector codec (rank typed FLOAT columns), on both data
    planes (the PR-5 cell).

    The graph's edges get rating-like weights and are symmetrized (CF
    needs both directions).  All four cells must land on bit-identical
    factor matrices — the fingerprint sums every vector component.  The
    learning rate is kept small: power-law hubs receive hundreds of
    sequential SGD steps per superstep and the default rate diverges to
    NaN on livejournal, which would poison the fingerprint comparison.
    """
    learning_rate = 0.002
    weights = 1.0 + (np.arange(graph.num_edges, dtype=np.float64) % 9) / 2.0
    cells: dict[str, float] = {}
    fingerprints: list[float] = []
    for codec in ("json", "vector"):
        for plane in ("sql", "shards"):
            vx = Vertexica(
                config=VertexicaConfig(
                    n_partitions=n_partitions,
                    data_plane=plane,
                    superstep_sync="halt",
                )
            )
            handle = vx.load_graph(
                f"{graph.name}_cf",
                graph.src,
                graph.dst,
                weights=weights,
                num_vertices=graph.num_vertices,
                symmetrize=True,
            )
            best = float("inf")
            fingerprint = 0.0
            for _ in range(max(repeat, 1)):
                result = vx.run(
                    handle,
                    CollaborativeFiltering(
                        iterations=iterations,
                        rank=rank,
                        learning_rate=learning_rate,
                        codec=codec,
                    ),
                )
                step_secs = sum(s.seconds for s in result.stats.supersteps)
                if step_secs < best:
                    best = step_secs
                    fingerprint = float(
                        sum(
                            sum(vector)
                            for vector in result.values.values()
                            if vector is not None
                        )
                    )
            cells[f"{codec}_{plane}"] = round(best, 6)
            fingerprints.append(fingerprint)
    return {
        "graph": graph.name,
        "rank": rank,
        "iterations": iterations,
        "superstep_seconds": cells,
        "speedup_vector_over_json_sql": round(
            cells["json_sql"] / cells["vector_sql"], 2
        )
        if cells["vector_sql"]
        else float("inf"),
        "speedup_vector_over_json_shards": round(
            cells["json_shards"] / cells["vector_shards"], 2
        )
        if cells["vector_shards"]
        else float("inf"),
        "fingerprints_match": all(
            abs(fp - fingerprints[0]) <= 1e-9 * max(1.0, abs(fingerprints[0]))
            for fp in fingerprints
        ),
    }


def run_vector_workloads_cell(
    graph: Graph, n_partitions: int, repeat: int = 1
) -> dict[str, Any]:
    """Embedding workloads: element-wise vector combiners on / off, on
    both data planes (the PR-10 cell).

    Multi-source SSSP (element-wise MIN over width-k distance vectors)
    and GNN feature propagation (element-wise SUM over width-k feature
    vectors) run with the combiner honored and suppressed.  All four
    cells per workload must land on bit-identical vertex vectors — the
    combiners reduce with the same float64 ``reduceat`` arithmetic in
    delivery order at every site — and the combined cells must route
    strictly fewer message rows (``messages_precombine`` counts rows
    before combining, so combined precombine == uncombined delivered).
    The edges get small synthetic weights and are symmetrized so every
    source reaches the whole component and fan-in is high enough for
    combining to collapse rows.
    """
    weights = 1.0 + (np.arange(graph.num_edges, dtype=np.float64) % 7) / 3.0
    workloads: dict[str, Any] = {
        "multi_sssp": lambda: MultiSourceSSSP(sources=(0, 1, 2, 3)),
        "feature_prop": lambda: FeaturePropagation(iterations=3, width=8),
    }
    report: dict[str, Any] = {"graph": graph.name, "workloads": {}}
    for name, make_program in workloads.items():
        cells: dict[str, dict[str, Any]] = {}
        fingerprints: list[float] = []
        for plane in ("sql", "shards"):
            for combine in (True, False):
                vx = Vertexica(
                    config=VertexicaConfig(
                        n_partitions=n_partitions,
                        data_plane=plane,
                        use_combiner=combine,
                        superstep_sync="halt",
                    )
                )
                handle = vx.load_graph(
                    f"{graph.name}_vec",
                    graph.src,
                    graph.dst,
                    weights=weights,
                    num_vertices=graph.num_vertices,
                    symmetrize=True,
                )
                best = float("inf")
                fingerprint = 0.0
                messages = 0
                precombine = 0
                for _ in range(max(repeat, 1)):
                    result = vx.run(handle, make_program())
                    step_secs = sum(s.seconds for s in result.stats.supersteps)
                    if step_secs < best:
                        best = step_secs
                        messages = result.stats.total_messages
                        precombine = result.stats.total_messages_precombine
                        fingerprint = float(
                            sum(
                                sum(
                                    x
                                    for x in vector
                                    if x == x and x != float("inf")
                                )
                                for vector in result.values.values()
                                if vector is not None
                            )
                        )
                label = f"{plane}_{'combined' if combine else 'uncombined'}"
                cells[label] = {
                    "superstep_seconds": round(best, 6),
                    "messages": messages,
                    "messages_precombine": precombine,
                }
                fingerprints.append(fingerprint)

        def _speedup(plane: str) -> float:
            combined = cells[f"{plane}_combined"]["superstep_seconds"]
            uncombined = cells[f"{plane}_uncombined"]["superstep_seconds"]
            return round(uncombined / combined, 2) if combined else float("inf")

        report["workloads"][name] = {
            "cells": cells,
            # Vector-combiner parity is exact by construction; the usual
            # relative tolerance only absorbs float printing noise.
            "fingerprints_match": all(
                abs(fp - fingerprints[0]) <= 1e-9 * max(1.0, abs(fingerprints[0]))
                for fp in fingerprints
            ),
            "combiner_reduces_messages": all(
                cells[f"{plane}_combined"]["messages"]
                < cells[f"{plane}_uncombined"]["messages"]
                and cells[f"{plane}_combined"]["messages_precombine"]
                == cells[f"{plane}_uncombined"]["messages"]
                for plane in ("sql", "shards")
            ),
            "speedup_combined_over_uncombined_sql": _speedup("sql"),
            "speedup_combined_over_uncombined_shards": _speedup("shards"),
        }
    return report


def run_checkpoint_overhead_cell(
    graph: Graph, n_partitions: int, repeat: int = 1
) -> dict[str, Any]:
    """Fault-tolerance cost: PageRank with checkpointing off / every 4
    supersteps / every superstep, on both data planes (the PR-6 cell).

    ``overhead`` is checkpoint seconds over superstep compute seconds for
    the same run (checkpoint time is accounted separately and excluded
    from per-superstep compute time, so the ratio is exact, not a
    noisy difference of wall clocks).  All six cells must land on
    bit-identical PageRank values — checkpointing must never perturb the
    trajectory.
    """
    import tempfile

    cells: dict[str, dict[str, float]] = {}
    fingerprints: list[float] = []
    for plane in ("sql", "shards"):
        per_policy: dict[str, dict[str, float]] = {}
        for label, every in (("off", None), ("every4", 4), ("every1", 1)):
            vx = Vertexica(
                config=VertexicaConfig(n_partitions=n_partitions, data_plane=plane)
            )
            handle = vx.load_graph(
                f"{graph.name}_ckpt",
                graph.src,
                graph.dst,
                num_vertices=graph.num_vertices,
            )
            best: tuple[float, float, float] | None = None
            with tempfile.TemporaryDirectory() as ckpt_dir:
                for _ in range(max(repeat, 1)):
                    result = vx.run(
                        handle,
                        PageRank(iterations=pagerank_iterations()),
                        checkpoint_every=every,
                        checkpoint_dir=ckpt_dir if every else None,
                    )
                    step_secs = sum(s.seconds for s in result.stats.supersteps)
                    ckpt_secs = result.stats.checkpoint_seconds
                    if best is None or step_secs < best[0]:
                        best = (step_secs, ckpt_secs, _fingerprint(result.values))
            step_secs, ckpt_secs, fingerprint = best
            fingerprints.append(fingerprint)
            per_policy[label] = {
                "superstep_seconds": round(step_secs, 6),
                "checkpoint_seconds": round(ckpt_secs, 6),
                "overhead": round(ckpt_secs / step_secs, 4) if step_secs else 0.0,
            }
        cells[plane] = per_policy
    return {
        "graph": graph.name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "cells": cells,
        "overhead_every4_sql": cells["sql"]["every4"]["overhead"],
        "overhead_every4_shards": cells["shards"]["every4"]["overhead"],
        "fingerprints_match": all(
            abs(fp - fingerprints[0]) <= 1e-9 * max(1.0, abs(fingerprints[0]))
            for fp in fingerprints
        ),
    }


def run_extraction_cell(graph: Graph, repeat: int = 1) -> dict[str, Any]:
    """Graph-view extraction timing at benchmark scale.

    The graph's edge list is re-normalized into ``{name}_users`` /
    ``{name}_follows`` base tables, declared as a graph view, and the
    view's extraction (``refresh()``) is timed against the direct
    ``load_graph`` edge-list path on identical data.
    """
    vx = Vertexica()
    load_graph_as_schema(vx.db, graph, prefix=graph.name)
    view = GraphView(
        vertices=NodeSpec(f"{graph.name}_users", key="id"),
        edges=EdgeSpec(
            f"{graph.name}_follows",
            src="follower_id",
            dst="followee_id",
            weight="closeness",
        ),
    )
    handle = vx.create_graph_view(f"{graph.name}_view", view, materialized=True)
    best_extract = handle.last_extraction.seconds
    for _ in range(max(repeat, 1) - 1):
        # Force the full path: with no DML pending, a default refresh()
        # would be a no-op incremental patch and time nothing.
        handle.refresh(incremental=False)
        best_extract = min(best_extract, handle.last_extraction.seconds)

    best_direct = float("inf")
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        direct = vx.load_graph(
            f"{graph.name}_direct",
            graph.src,
            graph.dst,
            num_vertices=graph.num_vertices,
        )
        best_direct = min(best_direct, time.perf_counter() - started)

    extracted = handle.resolve()
    return {
        "graph": graph.name,
        "num_vertices": extracted.num_vertices,
        "num_edges": extracted.num_edges,
        "extraction_seconds": round(best_extract, 6),
        "direct_load_seconds": round(best_direct, 6),
        "extraction_overhead_x": round(best_extract / best_direct, 2)
        if best_direct
        else float("inf"),
        "matches_direct_load": extracted.num_vertices == direct.num_vertices
        and extracted.num_edges == direct.num_edges,
    }


def run_refresh_cell(graph: Graph, repeat: int = 1) -> dict[str, Any]:
    """Incremental vs full refresh after small DML (the PR-3 cell).

    The graph is re-normalized into base tables and declared as a
    materialized view.  Each trial applies a small batch of inserts
    (~0.25% of the edges) and times ``refresh()`` on the delta path; the
    full path is then timed on the same view via
    ``refresh(incremental=False)``.  Parity is asserted against a shadow
    full extraction of the same declaration.
    """
    vx = Vertexica()
    load_graph_as_schema(vx.db, graph, prefix=graph.name)
    view = GraphView(
        vertices=NodeSpec(f"{graph.name}_users", key="id"),
        edges=EdgeSpec(
            f"{graph.name}_follows",
            src="follower_id",
            dst="followee_id",
            weight="closeness",
        ),
    )
    handle = vx.create_graph_view(f"{graph.name}_rview", view, materialized=True)
    follows = f"{graph.name}_follows"
    n_vertices = graph.num_vertices
    batch = max(1, graph.num_edges // 400)

    best_incremental = float("inf")
    delta_rows = 0
    for trial in range(max(repeat, 1)):
        rows = ", ".join(
            f"({n_vertices + trial}, {(i * 37) % n_vertices}, 1.0)"
            for i in range(batch)
        )
        vx.sql(f"INSERT INTO {follows} VALUES {rows}")
        started = time.perf_counter()
        handle.refresh()
        seconds = time.perf_counter() - started
        assert handle.last_extraction.mode == "incremental", (
            f"refresh fell back to full on {graph.name}"
        )
        delta_rows = handle.last_extraction.delta_rows
        best_incremental = min(best_incremental, seconds)

    # Parity: the *patched* tables must equal a from-scratch extraction.
    # Checked before the full-refresh timing loop below, which would
    # otherwise rebuild the live tables and mask any incremental bug.
    shadow = GraphViewHandle(vx.db, vx.storage, f"{graph.name}_rshadow", view)
    shadow.refresh(incremental=False)
    live_edges = vx.db.query_batch(
        f"SELECT src, dst, weight FROM {graph.name}_rview_edge"
    )
    shadow_edges = vx.db.query_batch(
        f"SELECT src, dst, weight FROM {graph.name}_rshadow_edge"
    )
    live_nodes = vx.db.query_batch(f"SELECT id FROM {graph.name}_rview_node")
    shadow_nodes = vx.db.query_batch(f"SELECT id FROM {graph.name}_rshadow_node")
    parity = all(
        np.array_equal(live_edges.column(c).values, shadow_edges.column(c).values)
        for c in ("src", "dst", "weight")
    ) and np.array_equal(live_nodes.column("id").values, shadow_nodes.column("id").values)
    shadow.drop()

    best_full = float("inf")
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        handle.refresh(incremental=False)
        best_full = min(best_full, time.perf_counter() - started)
    return {
        "graph": graph.name,
        "num_edges": handle.resolve().num_edges,
        "delta_rows_per_refresh": delta_rows,
        "incremental_seconds": round(best_incremental, 6),
        "full_seconds": round(best_full, 6),
        "speedup_full_over_incremental": round(best_full / best_incremental, 2)
        if best_incremental
        else float("inf"),
        "parity_ok": parity,
    }


def run_extraction_scaling_cell(repeat: int = 1, quick: bool = False) -> dict[str, Any]:
    """Production-scale extraction ablation (the PR-9 cell).

    A skewed social schema (Zipfian like targets, so a few celebrity
    posts carry dense co-occurrence groups) is extracted under five
    configurations:

    * ``selfjoin_pushdown`` / ``selfjoin_no_pushdown`` — the legacy SQL
      self-join lowering with the planner's predicate pushdown on/off
      (the co spec's filter either sinks into both scans beneath the
      join or runs above it);
    * ``exact_serial`` / ``exact_threads`` — the group-by-``via``
      pairwise expansion, serial and fanned across the thread executor
      with partition-sliced scans;
    * ``capped`` — degree-capped expansion (lossy, so it is excluded
      from the parity gate; its ``truncated_groups`` count is recorded).

    All four exact configurations must produce bit-identical graph
    tables — that parity is this cell's hard gate.
    """
    if quick:
        scale = dict(num_users=300, num_follows=1_500, num_likes=2_500,
                     num_posts=24, likes_zipf=2.0)
    else:
        scale = dict(num_users=3_000, num_follows=20_000, num_likes=40_000,
                     num_posts=80, likes_zipf=2.0)
    member_cut = scale["num_users"] // 2  # selective co filter: half the members

    def build_view(schema) -> GraphView:
        return GraphView(
            vertices=NodeSpec(schema.users_table, key="id", where="karma > 2.0"),
            edges=[
                EdgeSpec(schema.follows_table, src="follower_id",
                         dst="followee_id", weight="closeness",
                         where="closeness > 1.0"),
                CoEdgeSpec(schema.likes_table, member="user_id", via="post_id",
                           where=f"user_id < {member_cut}"),
            ],
        )

    def run_variant(label: str, options: ExtractionOptions | None,
                    pushdown: bool) -> dict[str, Any]:
        best: dict[str, Any] | None = None
        for _ in range(max(repeat, 1)):
            vx = Vertexica()
            schema = load_social_schema(vx.db, **scale)
            vx.db.pushdown = pushdown
            handle = vx.create_graph_view(
                "scalebench", build_view(schema), materialized=True,
                extraction=options,
            )
            stats = handle.last_extraction
            edges = vx.db.query_batch("SELECT src, dst, weight FROM scalebench_edge")
            nodes = vx.db.query_batch("SELECT id FROM scalebench_node")
            fingerprint = hash((
                edges.column("src").values.tobytes(),
                edges.column("dst").values.tobytes(),
                edges.column("weight").values.tobytes(),
                nodes.column("id").values.tobytes(),
            ))
            trial = {
                "variant": label,
                "seconds": stats.seconds,
                "lower_seconds": stats.lower_seconds,
                "load_seconds": stats.load_seconds,
                "num_queries": stats.num_queries,
                "parallelism": stats.parallelism,
                "truncated_groups": stats.truncated_groups,
                "num_vertices": stats.num_vertices,
                "num_edges": stats.num_edges,
                "fingerprint": fingerprint,
            }
            if best is None or trial["seconds"] < best["seconds"]:
                best = trial
        best["seconds"] = round(best["seconds"], 6)
        best["lower_seconds"] = round(best["lower_seconds"], 6)
        best["load_seconds"] = round(best["load_seconds"], 6)
        return best

    slice_rows = max(500, scale["num_likes"] // 8)
    variants = {
        "selfjoin_pushdown": run_variant(
            "selfjoin_pushdown",
            ExtractionOptions(executor="serial", co_mode="selfjoin"), True),
        "selfjoin_no_pushdown": run_variant(
            "selfjoin_no_pushdown",
            ExtractionOptions(executor="serial", co_mode="selfjoin"), False),
        "exact_serial": run_variant(
            "exact_serial",
            ExtractionOptions(executor="serial", co_mode="exact"), True),
        "exact_threads": run_variant(
            "exact_threads",
            ExtractionOptions(executor="threads", n_workers=4, co_mode="exact",
                              slice_min_rows=slice_rows), True),
        "capped": run_variant(
            "capped",
            ExtractionOptions(executor="serial", co_mode="capped", co_cap=32), True),
    }
    exact_labels = [
        "selfjoin_pushdown", "selfjoin_no_pushdown", "exact_serial", "exact_threads"
    ]
    parity = len({variants[label]["fingerprint"] for label in exact_labels}) == 1

    def ratio(numer: str, denom: str) -> float:
        d = variants[denom]["seconds"]
        return round(variants[numer]["seconds"] / d, 2) if d else float("inf")

    return {
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "variants": list(variants.values()),
        "parity_ok": parity,
        "speedup_pushdown_over_no_pushdown": ratio(
            "selfjoin_no_pushdown", "selfjoin_pushdown"),
        "speedup_expansion_over_selfjoin": ratio(
            "selfjoin_pushdown", "exact_serial"),
        "speedup_threads_over_serial": ratio("exact_serial", "exact_threads"),
        "speedup_capped_over_exact": ratio("exact_serial", "capped"),
        "capped_truncated_groups": variants["capped"]["truncated_groups"],
    }


def run_serving_cache_cell(
    graph: Graph, n_partitions: int, repeat: int = 1, n_readers: int = 4
) -> dict[str, Any]:
    """Serving-tier cost model (the PR-7 cell): a repeated ``run`` through
    :class:`VertexicaService` cold (snapshot pin + shadow execution per
    request) vs warm (version-keyed cache hit), plus concurrent-reader
    throughput over a mixed run/one-hop/SQL workload.

    Cold and warm requests must produce bit-identical values — a cache
    hit is only legal because equal ``(uid, version)`` implies equal
    contents, and this cell asserts it end to end.
    """
    import asyncio

    vx = Vertexica(config=VertexicaConfig(n_partitions=n_partitions))
    name = f"{graph.name}_srv"
    handle = vx.load_graph(
        name, graph.src, graph.dst, num_vertices=graph.num_vertices
    )
    program = PageRank(iterations=pagerank_iterations())
    cell: dict[str, Any] = {
        "graph": graph.name,
        "num_vertices": handle.num_vertices,
        "num_edges": handle.num_edges,
        "n_readers": n_readers,
    }

    async def measure() -> None:
        async with vx.serve(
            max_concurrency=n_readers, max_queue=4096
        ) as service:
            async with service.session(max_inflight=1) as s:
                best_cold = float("inf")
                for _ in range(max(repeat, 1)):
                    started = time.perf_counter()
                    cold = await s.run(name, program, cached=False)
                    best_cold = min(best_cold, time.perf_counter() - started)
                await s.run(name, program)  # prime the cache (miss)
                best_warm = float("inf")
                for _ in range(max(repeat, 1)):
                    started = time.perf_counter()
                    warm = await s.run(name, program)
                    best_warm = min(best_warm, time.perf_counter() - started)
                assert warm.stats.served_from_cache
                cell["cold_seconds"] = round(best_cold, 6)
                cell["warm_seconds"] = round(best_warm, 6)
                cell["speedup_warm_over_cold"] = (
                    round(best_cold / best_warm, 2) if best_warm else float("inf")
                )
                cold_fp, warm_fp = _fingerprint(cold.values), _fingerprint(warm.values)
                cell["fingerprints_match"] = abs(cold_fp - warm_fp) <= 1e-9 * max(
                    1.0, abs(cold_fp)
                )

            # Concurrent readers over a mixed cached workload.
            async def read_loop(requests: int) -> None:
                async with service.session(max_inflight=2) as session:
                    for i in range(requests):
                        kind = i % 3
                        if kind == 0:
                            await session.run(name, program)
                        elif kind == 1:
                            await session.one_hop(name, i % graph.num_vertices)
                        else:
                            await session.sql(
                                f"SELECT COUNT(*) AS n FROM {name}_edge"
                            )

            per_reader = 30
            started = time.perf_counter()
            await asyncio.gather(*[read_loop(per_reader) for _ in range(n_readers)])
            seconds = time.perf_counter() - started
            stats = service.stats()
            cell["concurrent"] = {
                "requests": per_reader * n_readers,
                "seconds": round(seconds, 6),
                "requests_per_sec": round(per_reader * n_readers / seconds, 1)
                if seconds
                else float("inf"),
                "cache_hits": stats["cache"]["hits"],
                "cache_misses": stats["cache"]["misses"],
                "hit_rate": stats["cache"]["hit_rate"],
                "rejected": stats["rejected"],
                "serve_p50_s": stats["serve"]["p50_s"],
                "serve_p95_s": stats["serve"]["p95_s"],
            }

    asyncio.run(measure())
    return cell


def git_commit() -> str | None:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
            ).stdout.strip()
            or None
        )
    except OSError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--scale", type=float, default=None, help="graph scale override")
    parser.add_argument(
        "--graphs", default="twitter,gplus,livejournal", help="comma-separated graph names"
    )
    parser.add_argument(
        "--algos", default="pagerank,sssp,cc", help="comma-separated algorithms"
    )
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="runs per cell; the best (min superstep time) is recorded",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny-scale smoke run: twitter only, asserts parity and that "
        "the batch path did not regress below the scalar path",
    )
    args = parser.parse_args(argv)

    scale = 0.05 if args.quick and args.scale is None else args.scale
    graphs = bench_graphs(scale)
    graph_names = ["twitter"] if args.quick else args.graphs.split(",")
    algos = args.algos.split(",")
    known_graphs = {g.name for g in graphs.ordered()}
    bad = [g for g in graph_names if g not in known_graphs] + [
        a for a in algos if a not in ALGORITHMS
    ]
    if bad:
        parser.error(
            f"unknown graph/algorithm name(s): {', '.join(bad)} "
            f"(graphs: {', '.join(sorted(known_graphs))}; algos: {', '.join(ALGORITHMS)})"
        )
    out_path = args.out
    if out_path is None and not args.quick:
        # Trajectory files are append-only history: never clobber an
        # existing one implicitly — require an explicit --out for that.
        out_path = "BENCH_PR10.json"
        if os.path.exists(out_path):
            print(
                f"{out_path} already exists; pass --out to overwrite it or "
                "choose a new trajectory filename (e.g. --out BENCH_PR11.json)",
                file=sys.stderr,
            )
            out_path = None

    results: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    failures: list[str] = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        for algorithm in algos:
            cells = {
                mode: run_cell(graph, algorithm, mode, args.partitions, args.repeat)
                for mode in MODES
            }
            results.extend(cells.values())
            batch, scalar = cells["batch"], cells["scalar"]
            if abs(batch["fingerprint"] - scalar["fingerprint"]) > 1e-6 * max(
                1.0, abs(scalar["fingerprint"])
            ):
                failures.append(
                    f"{graph_name}/{algorithm}: batch and scalar paths disagree "
                    f"({batch['fingerprint']} vs {scalar['fingerprint']})"
                )
            ratio = (
                scalar["superstep_seconds"] / batch["superstep_seconds"]
                if batch["superstep_seconds"]
                else float("inf")
            )
            speedups[f"{graph_name}/{algorithm}"] = round(ratio, 2)
            print(
                f"{graph_name:<12} {algorithm:<9} "
                f"batch {batch['superstep_seconds']:.3f}s  "
                f"scalar {scalar['superstep_seconds']:.3f}s  "
                f"({ratio:.1f}x, {batch['vertices_per_sec']:,.0f} v/s)"
            )

    # Edge-cache ablation (union format, batch compute) and graph-view
    # extraction timings — the PR-2 trajectory additions.
    edge_cache_cells = []
    extraction_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        cache_cell = run_edge_cache_cell(
            graph, "pagerank", args.partitions, args.repeat
        )
        edge_cache_cells.append(cache_cell)
        if not cache_cell["fingerprints_match"]:
            failures.append(
                f"{graph_name}/pagerank: cached and uncached edge paths disagree"
            )
        print(
            f"{graph_name:<12} edge-cache ablation: "
            f"cached {cache_cell['cached_superstep_seconds']:.3f}s  "
            f"uncached {cache_cell['uncached_superstep_seconds']:.3f}s  "
            f"({cache_cell['speedup_uncached_over_cached']:.2f}x)"
        )
        extraction_cell = run_extraction_cell(graph, args.repeat)
        extraction_cells.append(extraction_cell)
        if not extraction_cell["matches_direct_load"]:
            failures.append(
                f"{graph_name}: graph-view extraction disagrees with direct load"
            )
        print(
            f"{graph_name:<12} view extraction: "
            f"{extraction_cell['extraction_seconds']:.3f}s for "
            f"{extraction_cell['num_edges']} edges "
            f"(direct load {extraction_cell['direct_load_seconds']:.3f}s)"
        )

    # Worker scaling on both data planes — the PR-4 cell (and the quick
    # mode's shard-plane parity gate).
    workers_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        workers_cell = run_workers_scaling_cell(
            graph, "pagerank", args.partitions, args.repeat
        )
        workers_cells.append(workers_cell)
        if not workers_cell["fingerprints_match"]:
            failures.append(
                f"{graph_name}/pagerank: sql/shards/process-executor "
                "cells disagree"
            )
        shards_secs = workers_cell["superstep_seconds"]["shards"]
        proc_secs = workers_cell["superstep_seconds"]["shards_processes"]
        sql_secs = workers_cell["superstep_seconds"]["sql"]
        base, peak = min(shards_secs, key=int), max(shards_secs, key=int)
        print(
            f"{graph_name:<12} workers scaling: "
            f"sql {base}w {sql_secs[base]:.3f}s  "
            f"shards {base}w {shards_secs[base]:.3f}s / "
            f"{peak}w {shards_secs[peak]:.3f}s  "
            f"procs {peak}w {proc_secs[peak]:.3f}s  "
            f"(shards {workers_cell['speedup_shards_over_sql_1w']:.2f}x vs sql, "
            f"threads {workers_cell['shards_scaling_1w_over_4w']:.2f}x / "
            f"procs {workers_cell['processes_scaling_1w_over_4w']:.2f}x at "
            f"{peak} workers on {workers_cell['cpu_count']} CPU(s))"
        )

    # Collaborative filtering: JSON codec vs dense vector codec on both
    # data planes — the PR-5 cell (and the quick mode's typed-value-plane
    # parity gate).
    cf_codec_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        cf_cell = run_cf_codec_cell(graph, args.partitions, args.repeat)
        cf_codec_cells.append(cf_cell)
        if not cf_cell["fingerprints_match"]:
            failures.append(
                f"{graph_name}/cf: json and vector codec paths disagree"
            )
        secs = cf_cell["superstep_seconds"]
        print(
            f"{graph_name:<12} cf codecs: "
            f"json sql {secs['json_sql']:.3f}s  "
            f"vector sql {secs['vector_sql']:.3f}s  "
            f"({cf_cell['speedup_vector_over_json_sql']:.2f}x)  "
            f"shards {secs['json_shards']:.3f}s -> {secs['vector_shards']:.3f}s "
            f"({cf_cell['speedup_vector_over_json_shards']:.2f}x)"
        )

    # Embedding workloads: element-wise vector combiners on/off on both
    # data planes, with routed-message-row counters — the PR-10 cell
    # (and the quick mode's vector-combiner parity gate).
    vector_workload_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        vec_cell = run_vector_workloads_cell(graph, args.partitions, args.repeat)
        vector_workload_cells.append(vec_cell)
        for workload, data in vec_cell["workloads"].items():
            if not data["fingerprints_match"]:
                failures.append(
                    f"{graph_name}/{workload}: combined and uncombined "
                    "vector runs disagree (combiner must be bit-exact)"
                )
            if not data["combiner_reduces_messages"]:
                failures.append(
                    f"{graph_name}/{workload}: combiner did not reduce "
                    "routed message rows on every plane"
                )
            cells = data["cells"]
            combined = cells["shards_combined"]
            uncombined = cells["shards_uncombined"]
            print(
                f"{graph_name:<12} {workload}: "
                f"sql {cells['sql_uncombined']['superstep_seconds']:.3f}s -> "
                f"{cells['sql_combined']['superstep_seconds']:.3f}s "
                f"({data['speedup_combined_over_uncombined_sql']:.2f}x)  "
                f"shards {uncombined['superstep_seconds']:.3f}s -> "
                f"{combined['superstep_seconds']:.3f}s "
                f"({data['speedup_combined_over_uncombined_shards']:.2f}x)  "
                f"rows {uncombined['messages']} -> {combined['messages']}"
            )

    # Checkpoint overhead: fault-tolerance cost per checkpoint policy on
    # both data planes — the PR-6 cell (and the quick mode's
    # checkpointing-perturbs-nothing parity gate).
    checkpoint_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        ckpt_cell = run_checkpoint_overhead_cell(graph, args.partitions, args.repeat)
        checkpoint_cells.append(ckpt_cell)
        if not ckpt_cell["fingerprints_match"]:
            failures.append(
                f"{graph_name}/pagerank: checkpointing changed the result"
            )
        print(
            f"{graph_name:<12} checkpoint overhead: "
            f"sql every4 {ckpt_cell['overhead_every4_sql']*100:.1f}%  "
            f"every1 {ckpt_cell['cells']['sql']['every1']['overhead']*100:.1f}%  "
            f"shards every4 {ckpt_cell['overhead_every4_shards']*100:.1f}%  "
            f"every1 {ckpt_cell['cells']['shards']['every1']['overhead']*100:.1f}%"
        )

    # Serving tier: cold snapshot execution vs version-keyed cache hit,
    # plus concurrent-reader throughput — the PR-7 cell (and the quick
    # mode's cache-correctness parity gate).
    serving_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        serving_cell = run_serving_cache_cell(graph, args.partitions, args.repeat)
        serving_cells.append(serving_cell)
        if not serving_cell["fingerprints_match"]:
            failures.append(
                f"{graph_name}/pagerank: cached serving result disagrees "
                f"with uncached recomputation"
            )
        concurrent = serving_cell["concurrent"]
        print(
            f"{graph_name:<12} serving cache: "
            f"cold {serving_cell['cold_seconds']:.3f}s  "
            f"warm {serving_cell['warm_seconds']*1000:.2f}ms  "
            f"({serving_cell['speedup_warm_over_cold']:.0f}x)  "
            f"{concurrent['requests_per_sec']:,.0f} req/s over "
            f"{serving_cell['n_readers']} readers "
            f"(hit rate {concurrent['hit_rate']*100:.0f}%)"
        )

    # Incremental vs full refresh after small DML — the PR-3 cell.
    refresh_cells = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        refresh_cell = run_refresh_cell(graph, args.repeat)
        refresh_cells.append(refresh_cell)
        if not refresh_cell["parity_ok"]:
            failures.append(
                f"{graph_name}: incremental refresh disagrees with full re-extraction"
            )
        print(
            f"{graph_name:<12} view refresh: "
            f"incremental {refresh_cell['incremental_seconds']*1000:.2f}ms  "
            f"full {refresh_cell['full_seconds']*1000:.2f}ms  "
            f"({refresh_cell['speedup_full_over_incremental']:.1f}x, "
            f"{refresh_cell['delta_rows_per_refresh']} delta rows)"
        )

    # Production-scale extraction ablation: pushdown on/off, group-by
    # expansion vs SQL self-join, serial vs threaded lowering, degree
    # cap — the PR-9 cell (and the quick mode's extraction parity gate).
    scaling_cell = run_extraction_scaling_cell(args.repeat, quick=args.quick)
    if not scaling_cell["parity_ok"]:
        failures.append(
            "extraction scaling: exact variants disagree "
            "(selfjoin/pushdown/expansion/threads must be bit-identical)"
        )
    print(
        f"{'social':<12} extraction scaling: "
        f"pushdown {scaling_cell['speedup_pushdown_over_no_pushdown']:.2f}x  "
        f"expansion-vs-selfjoin "
        f"{scaling_cell['speedup_expansion_over_selfjoin']:.2f}x  "
        f"threads {scaling_cell['speedup_threads_over_serial']:.2f}x "
        f"({os.cpu_count()} cpus)  "
        f"capped {scaling_cell['speedup_capped_over_exact']:.2f}x "
        f"({scaling_cell['capped_truncated_groups']} truncated groups)"
    )

    report = {
        "bench": "figure2 data-plane trajectory",
        "commit": git_commit(),
        "scale": scale if scale is not None else "default",
        "pagerank_iterations": pagerank_iterations(),
        "n_partitions": args.partitions,
        "repeat": args.repeat,
        "speedup_scalar_over_batch_superstep_seconds": speedups,
        "edge_cache_ablation": edge_cache_cells,
        "graph_view_extraction": extraction_cells,
        "incremental_refresh": refresh_cells,
        "workers_scaling": workers_cells,
        "cf_codec": cf_codec_cells,
        "vector_workloads": vector_workload_cells,
        "checkpoint_overhead": checkpoint_cells,
        "serving_cache": serving_cells,
        "extraction_scaling": scaling_cell,
        "results": results,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {out_path}")

    if failures:
        for line in failures:
            print("FAIL:", line, file=sys.stderr)
        return 1
    if args.quick:
        # Loud perf tripwire: the vectorized path must not lose to the
        # scalar path on any cell (generous 1.2x slack for CI noise).
        for key, ratio in speedups.items():
            if ratio < 1.0 / 1.2:
                print(f"FAIL: batch path slower than scalar on {key} ({ratio}x)", file=sys.stderr)
                return 1
        # Shard-plane tripwire: skipping the per-superstep union SQL and
        # staging round trip must not make supersteps slower than the
        # SQL plane (generous slack for CI noise at smoke scale).
        for cell in workers_cells:
            if cell["speedup_shards_over_sql_1w"] < 1.0 / 1.5:
                print(
                    f"FAIL: shard plane slower than sql plane on "
                    f"{cell['graph']} ({cell['speedup_shards_over_sql_1w']}x)",
                    file=sys.stderr,
                )
                return 1
        # Typed-value-plane tripwire: dropping the JSON serialization must
        # not make CF supersteps slower than the VARCHAR path (generous
        # slack for CI noise; parity is already a hard gate above).
        for cell in cf_codec_cells:
            for plane in ("sql", "shards"):
                ratio = cell[f"speedup_vector_over_json_{plane}"]
                if ratio < 1.0 / 1.2:
                    print(
                        f"FAIL: vector codec slower than json on "
                        f"{cell['graph']}/{plane} ({ratio}x)",
                        file=sys.stderr,
                    )
                    return 1
        # Vector-combiner tripwire: combining collapses routed message
        # rows (that reduction is the hard gate above, and is robust on
        # any machine); the wall-clock win is modest at smoke scale and
        # CI is often single-core, so only an egregious slowdown of the
        # combined path (1.5x) fails the run.
        for cell in vector_workload_cells:
            for workload, data in cell["workloads"].items():
                for plane in ("sql", "shards"):
                    ratio = data[f"speedup_combined_over_uncombined_{plane}"]
                    if ratio < 1.0 / 1.5:
                        print(
                            f"FAIL: combined {workload} slower than "
                            f"uncombined on {cell['graph']}/{plane} "
                            f"({ratio}x)",
                            file=sys.stderr,
                        )
                        return 1
        # Checkpoint tripwire: snapshotting every 4 supersteps must stay
        # a small fraction of compute time.  The acceptance bar is 15% at
        # benchmark scale; smoke scale has tiny supersteps against the
        # checkpoint's fixed file-system cost, so the quick gate only
        # catches egregious regressions (100%).
        for cell in checkpoint_cells:
            for plane in ("sql", "shards"):
                overhead = cell[f"overhead_every4_{plane}"]
                if overhead > 1.0:
                    print(
                        f"FAIL: checkpoint_every=4 overhead {overhead*100:.0f}% "
                        f"on {cell['graph']}/{plane}",
                        file=sys.stderr,
                    )
                    return 1
        # Serving-cache tripwire: a warm (version-keyed cache hit) run
        # must beat the cold snapshot-and-execute path by a wide margin
        # even at smoke scale (the acceptance bar is 10x at benchmark
        # scale; 5x here leaves slack for tiny cold runs in CI).
        for cell in serving_cells:
            if cell["speedup_warm_over_cold"] < 5.0:
                print(
                    f"FAIL: serving cache hit only "
                    f"{cell['speedup_warm_over_cold']}x faster than cold on "
                    f"{cell['graph']}",
                    file=sys.stderr,
                )
                return 1
        # Refresh tripwire: at smoke scale both paths are sub-millisecond
        # and sit right at the incremental/full crossover, so only an
        # egregious slowdown (2x) fails the run — parity is the hard gate.
        for cell in refresh_cells:
            if cell["speedup_full_over_incremental"] < 0.5:
                print(
                    f"FAIL: incremental refresh slower than full on "
                    f"{cell['graph']} ({cell['speedup_full_over_incremental']}x)",
                    file=sys.stderr,
                )
                return 1
        # Extraction-scaling tripwire: parity across the exact variants is
        # the hard gate (checked above); perf gates are generous because at
        # smoke scale the co-occurrence groups are small and CI is often
        # single-core, so only egregious regressions (2x) fail the run.
        if scaling_cell["speedup_pushdown_over_no_pushdown"] < 0.5:
            print(
                f"FAIL: predicate pushdown slowed selective extraction "
                f"({scaling_cell['speedup_pushdown_over_no_pushdown']}x)",
                file=sys.stderr,
            )
            return 1
        if scaling_cell["speedup_expansion_over_selfjoin"] < 0.25:
            print(
                f"FAIL: group-by expansion slower than SQL self-join "
                f"({scaling_cell['speedup_expansion_over_selfjoin']}x)",
                file=sys.stderr,
            )
            return 1
        if scaling_cell["capped_truncated_groups"] < 1:
            print(
                "FAIL: capped extraction truncated no groups "
                "(skew knob not producing dense via groups)",
                file=sys.stderr,
            )
            return 1
        print("quick bench OK:", ", ".join(f"{k}={v}x" for k, v in speedups.items()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
