"""O3 — §2.3 Update-vs-Replace ablation.

"Instead of updating the vertices and messages in the existing tables,
Vertexica creates new vertex and message tables ... Such modifications via
replace are much faster.  Still, if the number of updated tuples is below
a fixed threshold, then Vertexica updates the existing tables."

Two workloads probe both regimes:

* PageRank — dense updates (every vertex, every superstep): replace must
  win big; forced per-tuple updates are pathological.
* SSSP on a long chain — sparse updates (a handful of vertices per
  superstep after the frontier passes): the update path is competitive,
  which is exactly why the paper keeps the threshold rule.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.core import Vertexica, VertexicaConfig
from repro.datasets.generators import twitter_like
from repro.programs import PageRank, ShortestPaths


def prepare_pagerank(graph, strategy: str):
    vx = Vertexica(config=VertexicaConfig(n_partitions=8, update_strategy=strategy))
    handle = vx.load_graph(
        f"{graph.name}_u{strategy}", graph.src, graph.dst,
        num_vertices=graph.num_vertices,
    )
    return lambda: vx.run(handle, PageRank(iterations=3)).values


@pytest.mark.parametrize("strategy", ["replace", "update", "auto"])
@pytest.mark.benchmark(group="ablation-update-replace-dense")
def test_dense_updates_pagerank(benchmark, strategy):
    # A smaller graph keeps the pathological per-tuple path affordable.
    graph = twitter_like(scale=0.05)
    values = run_once(benchmark, prepare_pagerank(graph, strategy))
    assert len(values) == graph.num_vertices


def prepare_sssp_chain(n: int, strategy: str):
    vx = Vertexica(config=VertexicaConfig(update_strategy=strategy))
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    handle = vx.load_graph(f"chain_{strategy}", src, dst)
    return lambda: vx.run(handle, ShortestPaths(source=0)).values


@pytest.mark.parametrize("strategy", ["replace", "update", "auto"])
@pytest.mark.benchmark(group="ablation-update-replace-sparse")
def test_sparse_updates_sssp(benchmark, strategy):
    # Chain SSSP: one vertex updated per superstep — the sparse regime.
    values = run_once(benchmark, prepare_sssp_chain(60, strategy))
    assert values[59] == 59.0
