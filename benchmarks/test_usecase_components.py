"""Connected components across engines (extends Figure 2's grid to the
paper's third named vertex-centric algorithm, §3.1).

Undirected semantics: Vertexica and SQL run on the symmetrized edge
table; the Giraph baseline gets the mirrored edge list.  Same expected
ordering as Figure 2: SQL < vertex-centric < Giraph-sim.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.core import Vertexica, VertexicaConfig
from repro.programs import ConnectedComponents
from repro.sql_graph import connected_components_sql


@pytest.fixture(scope="module")
def prepared(graphs):
    graph = graphs.twitter
    vx = Vertexica(config=VertexicaConfig(n_partitions=8))
    handle = vx.load_graph(
        "cc_bench", graph.src, graph.dst,
        num_vertices=graph.num_vertices, symmetrize=True,
    )
    sym_src = np.concatenate([graph.src, graph.dst])
    sym_dst = np.concatenate([graph.dst, graph.src])
    engine = GiraphEngine(
        graph.num_vertices, sym_src, sym_dst, config=GiraphConfig()
    )
    return vx, handle, engine, graph


@pytest.mark.benchmark(group="usecase-components")
def test_cc_vertexica(benchmark, prepared):
    vx, handle, _, graph = prepared
    values = run_once(benchmark, lambda: vx.run(handle, ConnectedComponents()).values)
    assert len(values) == graph.num_vertices


@pytest.mark.benchmark(group="usecase-components")
def test_cc_giraph(benchmark, prepared):
    _, _, engine, graph = prepared
    values = run_once(benchmark, lambda: engine.run(ConnectedComponents()).values)
    assert len(values) == graph.num_vertices


@pytest.mark.benchmark(group="usecase-components")
def test_cc_vertexica_sql(benchmark, prepared):
    vx, handle, _, graph = prepared
    values = run_once(benchmark, lambda: connected_components_sql(vx.db, handle))
    assert len(values) >= graph.num_vertices
