"""U1 — §3.2 one-hop SQL algorithms.

Triangle counting, strong overlap, and weak ties over the Twitter-shaped
graph — the analyses the paper calls "very difficult or even not possible
on traditional graph processing systems" and expresses as plain SQL.
Also measures PageRank-SQL over the same graph as the baseline for "how
expensive is a 1-hop query relative to an iterative one".
"""

import pytest

from conftest import run_once
from repro.core import Vertexica
from repro.sql_graph import (
    pagerank_sql,
    strong_overlap_sql,
    triangle_count_sql,
    weak_ties_sql,
)


@pytest.fixture(scope="module")
def loaded(graphs):
    vx = Vertexica()
    graph = graphs.twitter
    handle = vx.load_graph(
        f"{graph.name}_onehop", graph.src, graph.dst,
        num_vertices=graph.num_vertices,
    )
    return vx, handle


@pytest.mark.benchmark(group="usecase-onehop")
def test_triangle_counting(benchmark, loaded):
    vx, handle = loaded
    total = run_once(benchmark, lambda: triangle_count_sql(vx.db, handle))
    assert total > 0


@pytest.mark.benchmark(group="usecase-onehop")
def test_strong_overlap(benchmark, loaded):
    vx, handle = loaded
    pairs = run_once(
        benchmark, lambda: strong_overlap_sql(vx.db, handle, min_common=5)
    )
    assert isinstance(pairs, list)


@pytest.mark.benchmark(group="usecase-onehop")
def test_weak_ties(benchmark, loaded):
    vx, handle = loaded
    ties = run_once(benchmark, lambda: weak_ties_sql(vx.db, handle, min_pairs=5))
    assert ties


@pytest.mark.benchmark(group="usecase-onehop")
def test_pagerank_sql_reference_point(benchmark, loaded):
    vx, handle = loaded
    ranks = run_once(benchmark, lambda: pagerank_sql(vx.db, handle, iterations=5))
    assert len(ranks) == handle.num_vertices
