"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    gplus_like,
    livejournal_like,
    power_law_graph,
    ring_graph,
    star_graph,
    twitter_like,
)
from repro.errors import DatasetError


class TestPowerLaw:
    def test_exact_edge_count_no_dupes_no_loops(self):
        g = power_law_graph("g", 100, 500, seed=1)
        assert g.num_edges == 500
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert len(pairs) == 500
        assert all(s != d for s, d in pairs)

    def test_ids_in_range(self):
        g = power_law_graph("g", 50, 200, seed=2)
        assert g.src.min() >= 0 and g.src.max() < 50
        assert g.dst.min() >= 0 and g.dst.max() < 50

    def test_deterministic_under_seed(self):
        a = power_law_graph("g", 80, 300, seed=9)
        b = power_law_graph("g", 80, 300, seed=9)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = power_law_graph("g", 80, 300, seed=1)
        b = power_law_graph("g", 80, 300, seed=2)
        assert not (np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst))

    def test_degree_distribution_is_heavy_tailed(self):
        g = power_law_graph("g", 500, 5000, seed=3, exponent=1.5)
        degrees = np.sort(g.degree_sequence())[::-1]
        # hubs: top 5% of vertices own a disproportionate share of edges
        top = degrees[: len(degrees) // 20].sum()
        assert top / g.num_edges > 0.25

    def test_capacity_check(self):
        with pytest.raises(DatasetError, match="capacity"):
            power_law_graph("g", 5, 100, seed=1)

    def test_too_few_vertices(self):
        with pytest.raises(DatasetError):
            power_law_graph("g", 1, 0, seed=1)

    def test_weighted(self):
        g = power_law_graph("g", 30, 100, seed=4, weighted=True, weight_range=(2.0, 3.0))
        assert g.weights is not None
        assert g.weights.min() >= 2.0 and g.weights.max() <= 3.0


class TestPresets:
    def test_density_ordering_matches_paper(self):
        tw = twitter_like(scale=0.1)
        gp = gplus_like(scale=0.1)
        lj = livejournal_like(scale=0.1)
        density = lambda g: g.num_edges / g.num_vertices
        # GPlus is by far the densest; LiveJournal the sparsest (paper shapes)
        assert density(gp) > density(tw) > density(lj)

    def test_size_ordering(self):
        tw = twitter_like(scale=0.1)
        lj = livejournal_like(scale=0.1)
        assert lj.num_edges > tw.num_edges
        assert lj.num_vertices > tw.num_vertices

    def test_scale_parameter(self):
        small = twitter_like(scale=0.05)
        big = twitter_like(scale=0.2)
        assert big.num_edges > small.num_edges


class TestFixedShapes:
    def test_ring(self):
        g = ring_graph("r", 5)
        assert g.num_edges == 5
        assert set(zip(g.src.tolist(), g.dst.tolist())) == {
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0)
        }

    def test_star(self):
        g = star_graph("s", 4)
        assert g.num_vertices == 5
        assert all(s == 0 for s in g.src)
        assert sorted(g.dst.tolist()) == [1, 2, 3, 4]
