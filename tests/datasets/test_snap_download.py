"""Bounded retry-with-backoff for SNAP dataset downloads, sharing the
runtime's transient/deterministic classifier."""

from __future__ import annotations

import io
from urllib.error import HTTPError, URLError

import pytest

from repro.datasets.snap import download_snap_edge_list, read_snap_edge_list
from repro.errors import DatasetError

PAYLOAD = b"# tiny\n0 1\n1 2\n2 0\n"


class FakeResponse(io.BytesIO):
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def flaky_opener(failures):
    """An opener that raises the queued exceptions, then succeeds."""
    queue = list(failures)
    calls = []

    def opener(url, timeout):
        calls.append((url, timeout))
        if queue:
            raise queue.pop(0)
        return FakeResponse(PAYLOAD)

    opener.calls = calls
    return opener


class TestDownloadSnapEdgeList:
    def test_happy_path_writes_atomically(self, tmp_path):
        dest = tmp_path / "tiny.txt"
        opener = flaky_opener([])
        out = download_snap_edge_list(
            "http://snap.example/tiny.txt", str(dest), opener=opener
        )
        assert out == str(dest)
        assert dest.read_bytes() == PAYLOAD
        assert not (tmp_path / "tiny.txt.part").exists()
        graph = read_snap_edge_list(str(dest))
        assert graph.num_edges == 3

    def test_transient_errors_are_retried(self, tmp_path):
        sleeps: list[float] = []
        opener = flaky_opener(
            [
                URLError("connection reset"),
                HTTPError("http://x", 503, "unavailable", hdrs=None, fp=None),
            ]
        )
        dest = tmp_path / "tiny.txt"
        download_snap_edge_list(
            "http://snap.example/tiny.txt",
            str(dest),
            retries=3,
            backoff=0.5,
            opener=opener,
            sleep=sleeps.append,
        )
        assert dest.read_bytes() == PAYLOAD
        assert len(opener.calls) == 3
        assert sleeps == [0.5, 1.0]  # capped deterministic backoff

    def test_deterministic_http_error_fails_immediately(self, tmp_path):
        opener = flaky_opener(
            [HTTPError("http://x", 404, "not found", hdrs=None, fp=None)] * 5
        )
        with pytest.raises(DatasetError, match="404"):
            download_snap_edge_list(
                "http://snap.example/missing.txt",
                str(tmp_path / "missing.txt"),
                retries=3,
                opener=opener,
                sleep=lambda s: None,
            )
        assert len(opener.calls) == 1  # no retry budget burned

    def test_exhausted_retries_raise_dataset_error(self, tmp_path):
        opener = flaky_opener([URLError("down")] * 10)
        with pytest.raises(DatasetError, match="failed to download") as excinfo:
            download_snap_edge_list(
                "http://snap.example/tiny.txt",
                str(tmp_path / "tiny.txt"),
                retries=2,
                backoff=0.0,
                opener=opener,
                sleep=lambda s: None,
            )
        assert isinstance(excinfo.value.__cause__, URLError)
        assert len(opener.calls) == 3  # initial try + 2 retries
        assert not (tmp_path / "tiny.txt").exists()  # nothing half-written
