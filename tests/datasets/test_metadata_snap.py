"""Tests for the §4 metadata generator and SNAP edge-list I/O."""

import numpy as np
import pytest

from repro.core.storage import GraphStorage
from repro.datasets.metadata import EDGE_TYPES, MetadataSpec, attach_metadata
from repro.datasets.snap import read_snap_edge_list, write_snap_edge_list
from repro.datasets.generators import power_law_graph
from repro.errors import DatasetError


@pytest.fixture
def loaded(db):
    storage = GraphStorage(db)
    g = power_law_graph("meta", 50, 200, seed=5)
    handle = storage.load_graph(g.name, g.src, g.dst, num_vertices=g.num_vertices)
    return db, handle


SMALL_SPEC = MetadataSpec(uniform_ints=3, zipf_ints=2, floats=2, strings=2)


class TestMetadata:
    def test_paper_spec_counts(self):
        spec = MetadataSpec()
        assert spec.uniform_ints == 24
        assert spec.zipf_ints == 8
        assert spec.floats == 18
        assert spec.strings == 10
        assert spec.total == 60

    def test_node_attrs_table_shape(self, loaded):
        db, handle = loaded
        node_table, _ = attach_metadata(db, handle, SMALL_SPEC, seed=1)
        schema = db.table(node_table).schema
        assert schema.names() == [
            "id", "u0", "u1", "u2", "z0", "z1", "f0", "f1", "s0", "s1"
        ]
        assert db.table(node_table).num_rows == handle.num_vertices

    def test_edge_attrs_table_shape(self, loaded):
        db, handle = loaded
        _, edge_table = attach_metadata(db, handle, SMALL_SPEC, seed=1)
        schema = db.table(edge_table).schema
        assert schema.names() == ["src", "dst", "weight", "created_at", "etype"]
        assert db.table(edge_table).num_rows == handle.num_edges

    def test_edge_types_are_the_three_from_the_paper(self, loaded):
        db, handle = loaded
        _, edge_table = attach_metadata(db, handle, SMALL_SPEC, seed=1)
        types = {
            row[0]
            for row in db.execute(f"SELECT DISTINCT etype FROM {edge_table}").rows()
        }
        assert types <= set(EDGE_TYPES)

    def test_deterministic_under_seed(self, loaded):
        db, handle = loaded
        node_a, _ = attach_metadata(db, handle, SMALL_SPEC, seed=7)
        rows_a = db.execute(f"SELECT * FROM {node_a} ORDER BY id").rows()
        node_b, _ = attach_metadata(db, handle, SMALL_SPEC, seed=7)
        rows_b = db.execute(f"SELECT * FROM {node_b} ORDER BY id").rows()
        assert rows_a == rows_b

    def test_uniform_cardinalities_grow(self, loaded):
        db, handle = loaded
        node_table, _ = attach_metadata(
            db, handle, MetadataSpec(uniform_ints=8, zipf_ints=1, floats=1, strings=1),
            seed=2,
        )
        low = db.execute(f"SELECT COUNT(DISTINCT u0) FROM {node_table}").scalar()
        # u0 has cardinality 2
        assert low <= 2

    def test_queryable_with_graph(self, loaded):
        """§3.4: join metadata with the edge table relationally."""
        db, handle = loaded
        _, edge_table = attach_metadata(db, handle, SMALL_SPEC, seed=3)
        count = db.execute(
            f"SELECT COUNT(*) FROM {edge_table} WHERE etype = 'family'"
        ).scalar()
        assert 0 < count < handle.num_edges


class TestSnapIo:
    def test_roundtrip(self, tmp_path):
        g = power_law_graph("rt", 30, 80, seed=6)
        path = str(tmp_path / "edges.txt")
        write_snap_edge_list(g, path)
        back = read_snap_edge_list(path)
        assert back.num_edges == 80
        original = set(zip(g.src.tolist(), g.dst.tolist()))
        parsed = set(zip(back.src.tolist(), back.dst.tolist()))
        # relabeling is dense but order-preserving for dense inputs
        assert len(parsed) == len(original)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "edges.txt")
        path_content = "# comment\n\n0\t1\n1 2\n"
        with open(path, "w") as fh:
            fh.write(path_content)
        g = read_snap_edge_list(path)
        assert g.num_edges == 2

    def test_relabeling_compacts_sparse_ids(self, tmp_path):
        path = str(tmp_path / "edges.txt")
        with open(path, "w") as fh:
            fh.write("1000000 2000000\n2000000 3000000\n")
        g = read_snap_edge_list(path)
        assert g.num_vertices == 3
        assert g.src.max() < 3

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = str(tmp_path / "edges.txt")
        with open(path, "w") as fh:
            fh.write("5 9\n")
        g = read_snap_edge_list(path, relabel=False)
        assert g.num_vertices == 10

    def test_missing_file(self):
        with pytest.raises(DatasetError, match="no edge-list"):
            read_snap_edge_list("/nonexistent/file.txt")

    def test_malformed_line(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as fh:
            fh.write("only_one_field\n")
        with pytest.raises(DatasetError, match="expected"):
            read_snap_edge_list(path)

    def test_non_integer_ids(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as fh:
            fh.write("a b\n")
        with pytest.raises(DatasetError, match="non-integer"):
            read_snap_edge_list(path)
