"""Tests for the Giraph-like BSP engine."""

import numpy as np
import pytest

from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.errors import BaselineError
from repro.programs import PageRank, ShortestPaths
from repro.programs.pagerank import reference_pagerank


def quiet(n, src, dst, **kwargs):
    return GiraphEngine(
        n, src, dst,
        config=GiraphConfig(barrier_latency_s=0.0, **kwargs),
    )


class TestConstruction:
    def test_csr_adjacency(self, tiny_edges):
        src, dst = tiny_edges
        engine = quiet(5, src, dst)
        edges = engine.out_edges(0)
        assert sorted(e.target for e in edges) == [1, 2]
        assert engine.out_edges(1)[0].weight == 1.0

    def test_ragged_arrays_rejected(self):
        with pytest.raises(BaselineError):
            quiet(3, [0, 1], [1])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(BaselineError, match="exceeds num_vertices"):
            quiet(2, [0], [5])

    def test_config_validation(self):
        with pytest.raises(BaselineError):
            GiraphConfig(n_workers=0).validated()
        with pytest.raises(BaselineError):
            GiraphConfig(barrier_latency_s=-1).validated()


class TestExecution:
    def test_pagerank_matches_oracle(self, tiny_edges):
        src, dst = tiny_edges
        result = quiet(5, src, dst).run(PageRank(iterations=10))
        oracle = reference_pagerank(5, np.array(src), np.array(dst), iterations=10)
        for v in range(5):
            assert result.values[v] == pytest.approx(oracle[v], abs=1e-12)

    def test_worker_count_result_invariant(self, tiny_edges):
        src, dst = tiny_edges
        results = [
            quiet(5, src, dst, n_workers=w).run(PageRank(iterations=5)).values
            for w in (1, 2, 5)
        ]
        assert results[0] == results[1] == results[2]

    def test_serialization_toggle_result_invariant(self, tiny_edges):
        src, dst = tiny_edges
        with_pickle = quiet(5, src, dst).run(PageRank(iterations=4))
        engine = GiraphEngine(
            5, src, dst,
            config=GiraphConfig(barrier_latency_s=0.0, serialize_messages=False),
        )
        without = engine.run(PageRank(iterations=4))
        assert with_pickle.values == without.values
        assert with_pickle.bytes_shuffled > 0
        assert without.bytes_shuffled == 0

    def test_combiner_reduces_shuffled_bytes(self):
        # many vertices pointing at one hub -> SUM combiner collapses them
        n = 40
        src = list(range(1, n))
        dst = [0] * (n - 1)
        combined = quiet(n, src, dst, n_workers=2).run(PageRank(iterations=3))

        class NoCombinerPageRank(PageRank):
            combiner = None

        raw = quiet(n, src, dst, n_workers=2).run(NoCombinerPageRank(iterations=3))
        assert combined.bytes_shuffled < raw.bytes_shuffled
        for v in range(n):
            assert combined.values[v] == pytest.approx(raw.values[v], abs=1e-12)

    def test_vector_combiner_reduces_shuffled_bytes(self):
        # The element-wise MIN combiner collapses width-k distance
        # vectors sender-side; MIN is exact under any grouping, so the
        # hub sees bit-identical distances either way.
        from repro.programs import MultiSourceSSSP

        n = 40
        src = list(range(1, n)) + [0] * (n - 1)
        dst = [0] * (n - 1) + list(range(1, n))
        combined = quiet(n, src, dst, n_workers=2).run(
            MultiSourceSSSP(sources=(1, 2, 3))
        )
        raw_program = MultiSourceSSSP(sources=(1, 2, 3))
        raw_program.combiner = None
        raw = quiet(n, src, dst, n_workers=2).run(raw_program)
        assert combined.bytes_shuffled < raw.bytes_shuffled
        assert combined.values == raw.values  # bit-identical, not approx
        pre = sum(s.messages_precombine for s in combined.stats.supersteps)
        assert sum(s.messages_out for s in combined.stats.supersteps) < pre

    def test_sssp_terminates_by_quiescence(self, tiny_edges):
        src, dst = tiny_edges
        result = quiet(5, src, dst).run(ShortestPaths(source=0))
        assert result.values == {0: 0.0, 1: 1.0, 2: 1.0, 3: 2.0, 4: 3.0}

    def test_superstep_stats(self, tiny_edges):
        src, dst = tiny_edges
        result = quiet(5, src, dst).run(PageRank(iterations=3))
        stats = result.stats
        assert stats.n_supersteps == 4
        assert stats.supersteps[0].active_vertices == 5
        assert stats.supersteps[0].messages_in == 0

    def test_never_halting_program_hits_safety_cap(self):
        from repro.core.api import Vertex
        from repro.core.program import VertexProgram

        class Spinner(VertexProgram):
            def initial_value(self, vertex_id, out_degree, num_vertices):
                return 0.0

            def compute(self, vertex: Vertex) -> None:
                pass

        import repro.baselines.giraph.engine as engine_module

        original = engine_module.SUPERSTEP_SAFETY_LIMIT
        engine_module.SUPERSTEP_SAFETY_LIMIT = 4
        try:
            with pytest.raises(BaselineError, match="safety limit"):
                quiet(2, [0], [1]).run(Spinner())
        finally:
            engine_module.SUPERSTEP_SAFETY_LIMIT = original

    def test_barrier_latency_is_charged(self, tiny_edges):
        src, dst = tiny_edges
        engine = GiraphEngine(
            5, src, dst, config=GiraphConfig(barrier_latency_s=0.02)
        )
        result = engine.run(PageRank(iterations=2))
        assert result.stats.total_seconds >= 0.02 * result.stats.n_supersteps
