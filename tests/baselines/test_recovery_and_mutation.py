"""Failure injection: WAL crash recovery; the §3.3 mutation contrast."""

import pytest

from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.baselines.graphdb import PropertyGraphStore, StoreConfig
from repro.errors import BaselineError


class TestWalRecovery:
    def test_recover_rebuilds_committed_state(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        store = PropertyGraphStore(StoreConfig(wal_path=path, access_latency_s=0.0))
        with store.transaction() as tx:
            tx.create_node(1)
            tx.create_node(2)
            tx.create_relationship(1, 2, "KNOWS", weight=3.5)
            tx.set_property(1, "rank", 0.8)
        store.wal.close()

        recovered = PropertyGraphStore.recover(path)
        assert recovered.num_nodes == 2
        assert recovered.num_relationships == 1
        assert recovered.node(1).properties["rank"] == 0.8
        assert recovered.node(1).out_rels[0].properties["weight"] == 3.5
        recovered.close()

    def test_recover_discards_uncommitted_tail(self, tmp_path):
        """Simulated crash: a transaction's ops are logged but no commit
        marker was written before the 'crash'."""
        path = str(tmp_path / "wal.jsonl")
        store = PropertyGraphStore(StoreConfig(wal_path=path, access_latency_s=0.0))
        with store.transaction() as tx:
            tx.create_node(1)
        # Crash mid-transaction: ops hit the WAL, commit never does.
        tx = store.begin()
        tx.create_node(2)
        store.wal._fh.flush()
        store.wal.close()  # process "dies" here

        recovered = PropertyGraphStore.recover(path)
        assert recovered.has_node(1)
        assert not recovered.has_node(2)
        recovered.close()

    def test_recover_preserves_rolled_back_state(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        store = PropertyGraphStore(StoreConfig(wal_path=path, access_latency_s=0.0))
        with store.transaction() as tx:
            tx.create_node(1)
        tx = store.begin()
        tx.create_node(99)
        tx.rollback()
        store.wal.close()

        recovered = PropertyGraphStore.recover(path)
        assert recovered.has_node(1)
        assert not recovered.has_node(99)
        recovered.close()


class TestGiraphCannotMutate:
    def test_mutation_apis_raise(self):
        engine = GiraphEngine(
            3, [0], [1], config=GiraphConfig(barrier_latency_s=0.0)
        )
        with pytest.raises(BaselineError, match="cannot mutate"):
            engine.add_edge(1, 2)
        with pytest.raises(BaselineError, match="cannot mutate"):
            engine.remove_edge(0, 1)
