"""Tests for the property-graph store, its WAL, and its algorithms."""

import numpy as np
import pytest

from repro.baselines.graphdb import (
    PropertyGraphStore,
    StoreConfig,
    graphdb_pagerank,
    graphdb_shortest_paths,
    graphdb_wcc,
)
from repro.baselines.graphdb.wal import WriteAheadLog
from repro.errors import GraphDbCapacityError, GraphDbError
from repro.programs.connected_components import reference_components
from repro.programs.pagerank import reference_pagerank
from repro.programs.shortest_paths import reference_sssp


class TestStoreBasics:
    def test_create_and_read(self, fast_store):
        with fast_store.transaction() as tx:
            tx.create_node(1)
            tx.create_node(2)
            tx.create_relationship(1, 2, "KNOWS", weight=2.5)
        assert fast_store.num_nodes == 2
        assert fast_store.num_relationships == 1
        rel = fast_store.node(1).out_rels[0]
        assert rel.end == 2 and rel.properties["weight"] == 2.5
        assert fast_store.node(2).in_rels[0].start == 1

    def test_duplicate_node_rejected(self, fast_store):
        with fast_store.transaction() as tx:
            tx.create_node(1)
        with pytest.raises(GraphDbError, match="already exists"):
            with fast_store.transaction() as tx:
                tx.create_node(1)

    def test_unknown_node(self, fast_store):
        with pytest.raises(GraphDbError, match="unknown node"):
            fast_store.node(42)

    def test_relationship_needs_endpoints(self, fast_store):
        with pytest.raises(GraphDbError):
            with fast_store.transaction() as tx:
                tx.create_relationship(1, 2)

    def test_single_writer(self, fast_store):
        fast_store.begin()
        with pytest.raises(GraphDbError, match="already active"):
            fast_store.begin()

    def test_capacity_cap(self, tmp_path):
        store = PropertyGraphStore(
            StoreConfig(
                wal_path=str(tmp_path / "w.jsonl"),
                max_nodes=2,
                access_latency_s=0.0,
            )
        )
        with store.transaction() as tx:
            tx.create_node(0)
            tx.create_node(1)
            with pytest.raises(GraphDbCapacityError):
                tx.create_node(2)
        store.close()


class TestTransactions:
    def test_rollback_undoes_everything(self, fast_store):
        with fast_store.transaction() as tx:
            tx.create_node(1)
            tx.set_property(1, "rank", 0.5)
        tx = fast_store.begin()
        tx.create_node(2)
        tx.create_relationship(1, 2)
        tx.set_property(1, "rank", 0.9)
        tx.rollback()
        assert not fast_store.has_node(2)
        assert fast_store.node(1).properties["rank"] == 0.5
        assert fast_store.node(1).out_rels == []
        assert fast_store.num_relationships == 0

    def test_context_manager_rolls_back_on_error(self, fast_store):
        with pytest.raises(RuntimeError):
            with fast_store.transaction() as tx:
                tx.create_node(5)
                raise RuntimeError("boom")
        assert not fast_store.has_node(5)

    def test_closed_tx_rejects_reuse(self, fast_store):
        tx = fast_store.begin()
        tx.commit()
        with pytest.raises(GraphDbError, match="closed"):
            tx.commit()

    def test_set_property_undo_removes_new_key(self, fast_store):
        with fast_store.transaction() as tx:
            tx.create_node(1)
        tx = fast_store.begin()
        tx.set_property(1, "fresh", 1)
        tx.rollback()
        assert "fresh" not in fast_store.node(1).properties


class TestWal:
    def test_replay_returns_only_committed(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.log_operation(1, "create_node", {"id": 1})
        wal.log_commit(1)
        wal.log_operation(2, "create_node", {"id": 2})
        wal.log_abort(2)
        wal.log_operation(3, "create_node", {"id": 3})  # crash: no commit
        wal.close()
        ops = list(WriteAheadLog.replay(path))
        assert [op["id"] for op in ops] == [1]

    def test_replay_missing_file(self, tmp_path):
        with pytest.raises(GraphDbError, match="no WAL"):
            list(WriteAheadLog.replay(str(tmp_path / "nope.jsonl")))

    def test_store_writes_wal(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        store = PropertyGraphStore(StoreConfig(wal_path=path, access_latency_s=0.0))
        with store.transaction() as tx:
            tx.create_node(1)
        store.close()
        ops = list(WriteAheadLog.replay(path))
        assert ops[0]["op"] == "create_node"


class TestAlgorithms:
    @pytest.fixture
    def loaded(self, fast_store, small_graph):
        fast_store.load_edge_list(small_graph.src, small_graph.dst)
        with fast_store.transaction() as tx:
            for v in range(small_graph.num_vertices):
                if not fast_store.has_node(v):
                    tx.create_node(v)
        return fast_store, small_graph

    def test_pagerank_matches_oracle(self, loaded):
        store, graph = loaded
        got = graphdb_pagerank(store, iterations=6)
        oracle = reference_pagerank(graph.num_vertices, graph.src, graph.dst, 6)
        for v in range(graph.num_vertices):
            assert got[v] == pytest.approx(oracle[v], abs=1e-10)

    def test_sssp_matches_dijkstra(self, loaded):
        store, graph = loaded
        got = graphdb_shortest_paths(store, 0)
        oracle = reference_sssp(
            graph.num_vertices, graph.src, graph.dst,
            np.ones(graph.num_edges), 0,
        )
        for v in range(graph.num_vertices):
            if np.isinf(oracle[v]):
                assert np.isinf(got[v])
            else:
                assert got[v] == oracle[v]

    def test_wcc_matches_union_find(self, loaded):
        store, graph = loaded
        got = graphdb_wcc(store)
        oracle = reference_components(graph.num_vertices, graph.src, graph.dst)
        for v in range(graph.num_vertices):
            assert got[v] == oracle[v]

    def test_pagerank_empty_store(self, fast_store):
        assert graphdb_pagerank(fast_store) == {}

    def test_simulated_latency_accounted(self, tmp_path, tiny_edges):
        src, dst = tiny_edges
        store = PropertyGraphStore(
            StoreConfig(wal_path=str(tmp_path / "w.jsonl"), access_latency_s=1e-5)
        )
        store.load_edge_list(src, dst)
        graphdb_pagerank(store, iterations=2)
        assert store.simulated_latency_s > 0
        store.close()
