"""Tests for the benchmark harness itself (scale, formatting, agreement)."""

import numpy as np
import pytest

from repro.bench.figure2 import figure2_rows, run_system, sssp_source
from repro.bench.harness import (
    SystemTiming,
    bench_graphs,
    bench_scale,
    format_figure2_table,
    pagerank_iterations,
)
from repro.datasets.generators import power_law_graph, twitter_like


class TestScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 0.25

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 0.25

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert bench_scale() == 0.01

    def test_iterations_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PR_ITERS", "7")
        assert pagerank_iterations() == 7


class TestGraphs:
    def test_bench_graphs_cached(self):
        assert bench_graphs(0.05) is bench_graphs(0.05)

    def test_ordering_small_to_large(self):
        graphs = bench_graphs(0.05).ordered()
        assert [g.name for g in graphs] == ["twitter", "gplus", "livejournal"]

    def test_by_name(self):
        graphs = bench_graphs(0.05)
        assert graphs.by_name("gplus").name == "gplus"


class TestFormatting:
    def test_table_layout(self):
        rows = [
            SystemTiming("giraph", "twitter", 1.5),
            SystemTiming("vertexica", "twitter", 0.5),
            SystemTiming("graphdb", "twitter", None, note="exceeds capacity"),
        ]
        text = format_figure2_table("Demo", rows)
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "twitter" in lines[2]
        assert any("1.500s" in line for line in lines)
        assert any("DNF" in line for line in lines)
        assert any("exceeds capacity" in line for line in lines)

    def test_system_row_order_matches_paper(self):
        rows = [
            SystemTiming("vertexica_sql", "twitter", 0.1),
            SystemTiming("graphdb", "twitter", 3.0),
        ]
        text = format_figure2_table("t", rows)
        assert text.index("Graph Database") < text.index("Vertexica (SQL)")


class TestRunners:
    @pytest.fixture(scope="class")
    def tiny(self):
        return power_law_graph("twitter", 40, 150, seed=2)

    def test_sssp_source_is_hub(self, tiny):
        source = sssp_source(tiny)
        degrees = tiny.degree_sequence()
        assert degrees[source] == degrees.max()

    def test_vertexica_and_sql_agree(self, tiny):
        _, fp_vertex = run_system("vertexica", tiny, "pagerank")
        _, fp_sql = run_system("vertexica_sql", tiny, "pagerank")
        assert fp_vertex == pytest.approx(fp_sql, rel=1e-9)

    def test_figure2_rows_checks_agreement(self, tiny):
        rows = figure2_rows(
            "pagerank", [tiny], systems=("vertexica", "vertexica_sql")
        )
        assert len(rows) == 2
        assert all(r.seconds is not None for r in rows)

    def test_figure2_rows_graphdb_dnf_on_larger(self):
        small = power_law_graph("twitter", 30, 80, seed=3)
        large = power_law_graph("livejournal", 60, 200, seed=3)
        rows = figure2_rows(
            "sssp", [small, large],
            systems=("graphdb", "vertexica_sql"),
        )
        cells = {(r.system, r.graph): r for r in rows}
        assert cells[("graphdb", "twitter")].seconds is not None
        assert cells[("graphdb", "livejournal")].seconds is None
