"""Cross-engine consistency: the same program must produce identical
results on Vertexica (all configurations), the Giraph baseline, and the
pure-SQL implementations — the invariant Figure 2 rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.core import Vertexica
from repro.programs import ConnectedComponents, PageRank, ShortestPaths
from repro.programs.pagerank import reference_pagerank
from repro.sql_graph import pagerank_sql, shortest_paths_sql

settings.register_profile("cross", max_examples=10, deadline=None)


def random_graph(draw) -> tuple[int, list[int], list[int]]:
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=30,
        )
    )
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    return n, src, dst


@st.composite
def graphs(draw):
    return random_graph(draw)


def quiet_giraph(n, src, dst):
    return GiraphEngine(
        n, src, dst, config=GiraphConfig(barrier_latency_s=0.0, n_workers=3)
    )


class TestPageRankEverywhere:
    @settings(max_examples=10, deadline=None)
    @given(graphs())
    def test_all_engines_match_oracle(self, graph):
        n, src, dst = graph
        oracle = reference_pagerank(n, np.array(src, dtype=np.int64),
                                    np.array(dst, dtype=np.int64), iterations=5)

        vx = Vertexica()
        handle = vx.load_graph("g", src, dst, num_vertices=n)
        vertexica_values = vx.run(handle, PageRank(iterations=5)).values
        giraph_values = quiet_giraph(n, src, dst).run(PageRank(iterations=5)).values
        sql_values = pagerank_sql(vx.db, handle, iterations=5)

        for v in range(n):
            assert vertexica_values[v] == pytest.approx(oracle[v], abs=1e-10)
            assert giraph_values[v] == pytest.approx(oracle[v], abs=1e-10)
            assert sql_values[v] == pytest.approx(oracle[v], abs=1e-10)

    def test_vertexica_config_space_is_result_invariant(self, tiny_edges):
        """Every optimization knob must leave results bit-identical."""
        src, dst = tiny_edges
        expected = None
        for strategy in ("union", "join"):
            for update in ("update", "replace"):
                for partitions in (1, 4):
                    for workers in (1, 3):
                        vx = Vertexica()
                        g = vx.load_graph("g", src, dst, num_vertices=5)
                        values = vx.run(
                            g, PageRank(iterations=4),
                            input_strategy=strategy,
                            update_strategy=update,
                            n_partitions=partitions,
                            n_workers=workers,
                        ).values
                        if expected is None:
                            expected = values
                        else:
                            assert values == expected, (
                                strategy, update, partitions, workers
                            )


class TestSsspEverywhere:
    @settings(max_examples=10, deadline=None)
    @given(graphs())
    def test_vertexica_giraph_sql_agree(self, graph):
        n, src, dst = graph
        vx = Vertexica()
        handle = vx.load_graph("g", src, dst, num_vertices=n)
        program = ShortestPaths(source=0)
        vertexica_values = vx.run(handle, program).values
        giraph_values = quiet_giraph(n, src, dst).run(ShortestPaths(source=0)).values
        sql_values = shortest_paths_sql(vx.db, handle, 0)
        for v in range(n):
            assert vertexica_values[v] == giraph_values[v] == sql_values[v]


class TestComponentsEverywhere:
    @settings(max_examples=10, deadline=None)
    @given(graphs())
    def test_vertexica_and_giraph_agree(self, graph):
        n, src, dst = graph
        vx = Vertexica()
        handle = vx.load_graph("g", src, dst, num_vertices=n, symmetrize=True)
        vertexica_values = vx.run(handle, ConnectedComponents()).values
        # mirror the symmetrized edges for the in-memory engine
        sym_src = src + dst
        sym_dst = dst + src
        giraph_values = quiet_giraph(n, sym_src, sym_dst).run(ConnectedComponents()).values
        assert vertexica_values == giraph_values
