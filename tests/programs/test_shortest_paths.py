"""Tests for vertex-centric SSSP against the Dijkstra oracle."""

import numpy as np
import pytest

from repro.datasets.generators import ring_graph
from repro.programs import ShortestPaths
from repro.programs.shortest_paths import INFINITY, reference_sssp


class TestAgainstOracle:
    def test_unweighted(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, ShortestPaths(source=0))
        oracle = reference_sssp(5, src, dst, [1.0] * len(src), 0)
        for v in range(5):
            assert result.values[v] == oracle[v]

    def test_weighted_prefers_cheap_detour(self, vx):
        # 0->1 costs 10 directly but 3 via 2.
        g = vx.load_graph("g", [0, 0, 2], [1, 2, 1], weights=[10.0, 1.0, 2.0])
        result = vx.run(g, ShortestPaths(source=0))
        assert result.values[1] == 3.0

    def test_unreachable_is_infinity(self, vx):
        g = vx.load_graph("g", [0], [1], num_vertices=3)
        result = vx.run(g, ShortestPaths(source=0))
        assert result.values[2] == INFINITY

    def test_source_distance_zero(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        assert vx.run(g, ShortestPaths(source=3)).values[3] == 0.0

    def test_ring_takes_diameter_supersteps(self, vx):
        ring = ring_graph("ring", 8)
        g = vx.load_graph(ring.name, ring.src, ring.dst)
        result = vx.run(g, ShortestPaths(source=0))
        assert result.values[7] == 7.0
        # one superstep per hop (7), plus the source step and the final
        # superstep where vertex 0 rejects the wrapped-around candidate
        assert result.stats.n_supersteps == 9

    def test_random_graph_matches_dijkstra(self, vx, small_graph):
        weights = np.abs(np.sin(np.arange(small_graph.num_edges))) + 0.5
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            weights=weights, num_vertices=small_graph.num_vertices,
        )
        result = vx.run(g, ShortestPaths(source=0))
        oracle = reference_sssp(
            small_graph.num_vertices, small_graph.src, small_graph.dst, weights, 0
        )
        for v in range(small_graph.num_vertices):
            if np.isinf(oracle[v]):
                assert result.values[v] == INFINITY
            else:
                assert result.values[v] == pytest.approx(oracle[v], abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShortestPaths(source=-1)

    def test_min_combiner_declared(self):
        assert ShortestPaths(source=0).combiner == "MIN"
