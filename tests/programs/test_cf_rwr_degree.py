"""Tests for collaborative filtering, random walk with restart, degrees."""

import numpy as np
import pytest

from repro.programs import (
    CollaborativeFiltering,
    InDegree,
    OutDegree,
    RandomWalkWithRestart,
)
from repro.programs.random_walk import reference_rwr


def bipartite_ratings():
    """2 users (0,1) x 2 items (2,3) with known ratings."""
    return [(0, 2, 5.0), (0, 3, 1.0), (1, 2, 4.0), (1, 3, 2.0)]


class TestCollaborativeFiltering:
    def test_learns_ratings(self, vx):
        ratings = bipartite_ratings()
        src = [u for u, i, r in ratings]
        dst = [i for u, i, r in ratings]
        weights = [r for u, i, r in ratings]
        g = vx.load_graph("bip", src, dst, weights=weights, symmetrize=True)
        program = CollaborativeFiltering(iterations=40, rank=4, learning_rate=0.1)
        result = vx.run(g, program)
        rmse = program.rmse(result.values, ratings)
        assert rmse < 0.75
        # high rating pairs predicted above low rating pairs
        assert program.predict(result.values, 0, 2) > program.predict(result.values, 0, 3)

    def test_deterministic_under_seed(self, vx):
        ratings = bipartite_ratings()
        src = [u for u, i, r in ratings]
        dst = [i for u, i, r in ratings]
        weights = [r for u, i, r in ratings]
        g = vx.load_graph("bip", src, dst, weights=weights, symmetrize=True)
        a = vx.run(g, CollaborativeFiltering(iterations=5, seed=3)).values
        b = vx.run(g, CollaborativeFiltering(iterations=5, seed=3)).values
        assert a == b

    def test_vector_state_survives_json_codec(self, vx):
        ratings = bipartite_ratings()
        src = [u for u, i, r in ratings]
        dst = [i for u, i, r in ratings]
        g = vx.load_graph("bip", src, dst, weights=[r for _, _, r in ratings],
                          symmetrize=True)
        program = CollaborativeFiltering(iterations=2, rank=3)
        result = vx.run(g, program)
        for vector in result.values.values():
            assert isinstance(vector, list) and len(vector) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CollaborativeFiltering(iterations=0)
        with pytest.raises(ValueError):
            CollaborativeFiltering(rank=0)

    def test_rmse_empty_ratings(self):
        assert CollaborativeFiltering.rmse({}, []) == 0.0


class TestRandomWalkWithRestart:
    def test_matches_oracle(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, RandomWalkWithRestart(source=0, iterations=8))
        oracle = reference_rwr(5, np.array(src), np.array(dst), 0, iterations=8)
        for v in range(5):
            assert result.values[v] == pytest.approx(oracle[v], abs=1e-12)

    def test_source_gets_teleport_mass(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, RandomWalkWithRestart(source=2, iterations=6))
        assert result.values[2] >= 0.15  # at least the restart mass

    def test_proximity_ordering(self, vx):
        # chain 0 -> 1 -> 2 -> 3: closer to source = more probability mass
        g = vx.load_graph("chain", [0, 1, 2], [1, 2, 3])
        result = vx.run(g, RandomWalkWithRestart(source=0, iterations=6))
        assert result.values[1] > result.values[2] > result.values[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkWithRestart(source=0, iterations=0)
        with pytest.raises(ValueError):
            RandomWalkWithRestart(source=0, restart=0.0)


class TestDegrees:
    def test_out_degree(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, OutDegree())
        expected = {v: float(src.count(v)) for v in range(5)}
        assert result.values == expected

    def test_in_degree(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, InDegree())
        expected = {v: float(dst.count(v)) for v in range(5)}
        assert result.values == expected

    def test_out_degree_single_superstep(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        assert vx.run(g, OutDegree()).stats.n_supersteps == 1

    def test_in_degree_two_supersteps(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        assert vx.run(g, InDegree()).stats.n_supersteps == 2
