"""Tests for vertex-centric PageRank against the dense oracle."""

import numpy as np
import pytest

from repro.programs import PageRank
from repro.programs.pagerank import reference_pagerank


class TestValidation:
    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            PageRank(iterations=0)

    def test_bad_damping(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.0)
        with pytest.raises(ValueError):
            PageRank(damping=0.0)

    def test_declares_sum_combiner(self):
        assert PageRank(iterations=1).combiner == "SUM"


class TestAgainstOracle:
    def test_exact_match_on_tiny_graph(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=10))
        oracle = reference_pagerank(5, np.array(src), np.array(dst), iterations=10)
        for v in range(5):
            assert result.values[v] == pytest.approx(oracle[v], abs=1e-12)

    def test_ranks_sum_to_at_most_one(self, vx, small_graph):
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            num_vertices=small_graph.num_vertices,
        )
        result = vx.run(g, PageRank(iterations=8))
        total = sum(result.values.values())
        # dangling vertices leak rank mass, so total <= 1 (+ float slack)
        assert total <= 1.0 + 1e-9
        assert total > 0.5

    def test_dangling_vertex_keeps_teleport_share(self, vx):
        # vertex 2 has no out-edges and no in-edges beyond teleport
        g = vx.load_graph("g", [0], [1], num_vertices=3)
        result = vx.run(g, PageRank(iterations=5))
        oracle = reference_pagerank(3, np.array([0]), np.array([1]), iterations=5)
        assert result.values[2] == pytest.approx(oracle[2])

    def test_hub_ranks_highest(self, vx):
        # Everyone points at vertex 0.
        src = [1, 2, 3, 4]
        dst = [0, 0, 0, 0]
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=5))
        assert max(result.values, key=result.values.get) == 0

    def test_combiner_off_same_result(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with_combiner = vx.run(g, PageRank(iterations=4), use_combiner=True).values
        without = vx.run(g, PageRank(iterations=4), use_combiner=False).values
        for v in range(5):
            assert with_combiner[v] == pytest.approx(without[v], abs=1e-12)

    def test_message_counts_shrink_with_combiner(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        combined = vx.run(g, PageRank(iterations=3), use_combiner=True).stats
        raw = vx.run(g, PageRank(iterations=3), use_combiner=False).stats
        # tiny graph has a vertex with in-degree 2 -> combining merges some
        assert combined.total_messages <= raw.total_messages
