"""Tests for connected components and label propagation."""

import numpy as np
import pytest

from repro.programs import ConnectedComponents, LabelPropagation
from repro.programs.connected_components import reference_components


class TestConnectedComponents:
    def test_two_components(self, vx):
        g = vx.load_graph("g", [0, 1, 3], [1, 2, 4], num_vertices=6, symmetrize=True)
        result = vx.run(g, ConnectedComponents())
        assert result.values == {0: 0, 1: 0, 2: 0, 3: 3, 4: 3, 5: 5}

    def test_matches_union_find_oracle(self, vx, small_graph):
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            num_vertices=small_graph.num_vertices, symmetrize=True,
        )
        result = vx.run(g, ConnectedComponents())
        oracle = reference_components(
            small_graph.num_vertices, small_graph.src, small_graph.dst
        )
        for v in range(small_graph.num_vertices):
            assert result.values[v] == oracle[v]

    def test_labels_are_component_minima(self, vx):
        g = vx.load_graph("g", [5, 6], [6, 7], symmetrize=True)
        result = vx.run(g, ConnectedComponents())
        assert set(result.values.values()) == {5}

    def test_integer_codec_roundtrip(self, vx):
        """Component labels survive the INTEGER column roundtrip exactly."""
        g = vx.load_graph("g", [10_000_000], [10_000_001], symmetrize=True)
        result = vx.run(g, ConnectedComponents())
        assert result.values[10_000_001] == 10_000_000


class TestLabelPropagation:
    def test_clique_converges_to_min_label(self, vx):
        # 4-clique: everyone ends with label 0.
        src, dst = [], []
        for a in range(4):
            for b in range(4):
                if a != b:
                    src.append(a)
                    dst.append(b)
        g = vx.load_graph("g", src, dst)
        result = vx.run(g, LabelPropagation(iterations=4))
        assert set(result.values.values()) == {0}

    def test_seeded_cliques_stay_separate(self, vx):
        # Synchronous LP with min-tiebreak lets labels invade across a
        # bridge when every label is unique (the first round is all ties),
        # so community stability is tested with seeded majorities — the
        # semi-supervised mode the seeds parameter exists for.
        src, dst = [], []
        for base in (0, 10):
            for a in range(base, base + 3):
                for b in range(base, base + 3):
                    if a != b:
                        src.append(a)
                        dst.append(b)
        src += [2]
        dst += [10]
        g = vx.load_graph("g", src, dst, symmetrize=True)
        seeds = {0: 0, 1: 0, 2: 0, 10: 10, 11: 10, 12: 10}
        result = vx.run(g, LabelPropagation(iterations=5, seeds=seeds))
        assert {result.values[v] for v in (0, 1, 2)} == {0}
        assert {result.values[v] for v in (10, 11, 12)} == {10}

    def test_seed_labels_respected_initially(self, vx):
        g = vx.load_graph("g", [0], [1], num_vertices=3)
        program = LabelPropagation(iterations=1, seeds={2: 99})
        result = vx.run(g, program)
        assert result.values[2] == 99

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelPropagation(iterations=0)
