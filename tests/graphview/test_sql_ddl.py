"""The CREATE/DROP GRAPH VIEW SQL surface: parsing and execution."""

from __future__ import annotations

import pytest

from repro import Vertexica
from repro.engine import Database
from repro.engine.sql.ast import (
    ConnectClause,
    CreateGraphViewStatement,
    DropGraphViewStatement,
    EdgeClause,
    RefreshGraphViewStatement,
)
from repro.engine.sql.parser import parse_statement
from repro.errors import GraphViewError, PlanError, SqlSyntaxError
from repro.programs import PageRank


class TestParsing:
    def test_full_statement(self):
        stmt = parse_statement(
            "CREATE MATERIALIZED GRAPH VIEW social AS "
            "NODES (users KEY id WHERE karma > 1.0) "
            "EDGES (follows SRC follower_id DST followee_id WEIGHT closeness "
            "       WHERE closeness > 0 UNDIRECTED, "
            "       likes CONNECT user_id VIA post_id WEIGHT COUNT(*))"
        )
        assert isinstance(stmt, CreateGraphViewStatement)
        assert stmt.name == "social"
        assert stmt.materialized
        assert len(stmt.nodes) == 1 and stmt.nodes[0].where is not None
        edge, connect = stmt.edges
        assert isinstance(edge, EdgeClause) and not edge.directed
        assert edge.weight is not None and edge.where is not None
        assert isinstance(connect, ConnectClause)
        assert connect.member == "user_id" and connect.via == "post_id"

    def test_minimal_statement_is_virtual(self):
        stmt = parse_statement(
            "CREATE GRAPH VIEW g AS NODES (t KEY id) EDGES (e SRC a DST b)"
        )
        assert not stmt.materialized
        assert stmt.edges[0].directed

    def test_if_not_exists(self):
        stmt = parse_statement(
            "CREATE GRAPH VIEW IF NOT EXISTS g AS "
            "NODES (t KEY id) EDGES (e SRC a DST b)"
        )
        assert stmt.if_not_exists

    def test_drop_variants(self):
        stmt = parse_statement("DROP GRAPH VIEW g")
        assert isinstance(stmt, DropGraphViewStatement) and not stmt.if_exists
        assert parse_statement("DROP GRAPH VIEW IF EXISTS g").if_exists

    def test_refresh_variants(self):
        stmt = parse_statement("REFRESH GRAPH VIEW g")
        assert isinstance(stmt, RefreshGraphViewStatement)
        assert stmt.name == "g" and stmt.mode is None
        assert parse_statement("REFRESH GRAPH VIEW g FULL").mode == "full"
        assert parse_statement("REFRESH GRAPH VIEW g INCREMENTAL").mode == "incremental"

    def test_refresh_malformed_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("REFRESH GRAPH g")
        with pytest.raises(SqlSyntaxError):
            parse_statement("REFRESH GRAPH VIEW")
        with pytest.raises(SqlSyntaxError):
            parse_statement("REFRESH GRAPH VIEW g SIDEWAYS")

    def test_refresh_stays_valid_identifier(self, db):
        """REFRESH is contextual: only the REFRESH GRAPH VIEW prefix
        starts the statement, so it remains a legal table/column name."""
        db.execute("CREATE TABLE refresh (graph INTEGER)")
        db.execute("INSERT INTO refresh VALUES (1)")
        assert db.execute("SELECT graph FROM refresh").rows() == [(1,)]

    @pytest.mark.parametrize(
        "bad",
        [
            "CREATE GRAPH VIEW g AS EDGES (e SRC a DST b)",  # NODES required
            "CREATE GRAPH VIEW g AS NODES (t KEY id)",  # EDGES required
            "CREATE GRAPH VIEW g AS NODES (t) EDGES (e SRC a DST b)",  # no KEY
            "CREATE GRAPH VIEW g AS NODES (t KEY id) EDGES (e SRC a)",  # no DST
            "CREATE GRAPH VIEW g AS NODES (t KEY id) EDGES (e CONNECT a)",  # no VIA
            "CREATE MATERIALIZED TABLE t (id INTEGER)",  # MATERIALIZED is view-only
        ],
    )
    def test_malformed_statements_raise(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_statement(bad)

    def test_contextual_words_stay_valid_identifiers(self, db):
        """SRC/DST/WEIGHT/NODES/EDGES are not reserved outside view DDL."""
        db.execute("CREATE TABLE edges (src INTEGER, dst INTEGER, weight FLOAT)")
        db.execute("INSERT INTO edges VALUES (1, 2, 0.5)")
        assert db.execute(
            "SELECT src, dst, weight FROM edges WHERE weight > 0"
        ).rows() == [(1, 2, 0.5)]

    def test_graph_and_view_stay_valid_identifiers(self, db):
        """GRAPH/VIEW are contextual too — only the tokens right after
        CREATE/DROP decide, so they remain legal table/column names."""
        db.execute("CREATE TABLE view (graph INTEGER, materialized FLOAT)")
        db.execute("INSERT INTO view VALUES (1, 2.0)")
        assert db.execute("SELECT graph, materialized FROM view").rows() == [(1, 2.0)]
        db.execute("DROP TABLE view")
        db.execute("CREATE TABLE graph (id INTEGER)")
        db.execute("DROP TABLE IF EXISTS graph")


class TestExecution:
    @pytest.fixture
    def vx(self) -> Vertexica:
        vx = Vertexica()
        vx.sql("CREATE TABLE users (id INTEGER, karma FLOAT)")
        vx.sql("INSERT INTO users VALUES (0, 5.0), (1, 1.0), (2, 3.0)")
        vx.sql("CREATE TABLE follows (a INTEGER, b INTEGER)")
        vx.sql("INSERT INTO follows VALUES (0, 1), (1, 2), (2, 0)")
        return vx

    def test_create_and_run(self, vx):
        result = vx.sql(
            "CREATE MATERIALIZED GRAPH VIEW g AS "
            "NODES (users KEY id) EDGES (follows SRC a DST b)"
        )
        assert result.row_count == 3  # extracted edges
        assert vx.db.has_table("g_edge")
        ranks = vx.run("g", PageRank(iterations=4))
        assert len(ranks.values) == 3

    def test_create_virtual_defers_extraction(self, vx):
        vx.sql("CREATE GRAPH VIEW g AS NODES (users KEY id) EDGES (follows SRC a DST b)")
        assert not vx.db.has_table("g_edge")  # nothing extracted yet
        vx.run("g", PageRank(iterations=2))
        assert vx.db.has_table("g_edge")

    def test_if_not_exists_is_idempotent(self, vx):
        create = (
            "CREATE GRAPH VIEW IF NOT EXISTS g AS "
            "NODES (users KEY id) EDGES (follows SRC a DST b)"
        )
        vx.sql(create)
        vx.sql(create)  # no raise
        with pytest.raises(GraphViewError, match="already exists"):
            vx.sql(
                "CREATE GRAPH VIEW g AS NODES (users KEY id) "
                "EDGES (follows SRC a DST b)"
            )

    def test_drop_graph_view_sql(self, vx):
        vx.sql(
            "CREATE MATERIALIZED GRAPH VIEW g AS "
            "NODES (users KEY id) EDGES (follows SRC a DST b)"
        )
        vx.sql("DROP GRAPH VIEW g")
        assert not vx.db.has_table("g_edge")
        with pytest.raises(GraphViewError, match="not defined"):
            vx.sql("DROP GRAPH VIEW g")
        vx.sql("DROP GRAPH VIEW IF EXISTS g")  # no raise

    def test_where_and_weight_expressions_round_trip(self, vx):
        vx.sql(
            "CREATE MATERIALIZED GRAPH VIEW g AS "
            "NODES (users KEY id WHERE karma >= 3.0) "
            "EDGES (follows SRC a DST b WEIGHT a * 10 + b WHERE a < 2)"
        )
        rows = sorted(vx.sql("SELECT src, dst, weight FROM g_edge").rows())
        assert rows == [(0, 1, 1.0), (1, 2, 12.0)]

    def test_refresh_graph_view_sql(self, vx):
        vx.sql(
            "CREATE MATERIALIZED GRAPH VIEW g AS "
            "NODES (users KEY id) EDGES (follows SRC a DST b)"
        )
        vx.sql("INSERT INTO follows VALUES (0, 2)")
        result = vx.sql("REFRESH GRAPH VIEW g")
        assert result.row_count == 4  # refreshed edge count
        assert vx.sql("SELECT COUNT(*) FROM g_edge").scalar() == 4
        handle = vx.graph_view("g")
        assert handle.last_extraction.mode == "incremental"
        vx.sql("INSERT INTO follows VALUES (1, 0)")
        vx.sql("REFRESH GRAPH VIEW g FULL")
        assert handle.last_extraction.mode == "full"
        assert vx.sql("SELECT COUNT(*) FROM g_edge").scalar() == 5

    def test_refresh_unknown_view_raises(self, vx):
        with pytest.raises(GraphViewError, match="not defined"):
            vx.sql("REFRESH GRAPH VIEW nope")

    def test_drop_materialized_view_drops_all_backing_tables(self, vx):
        """Regression: DROP GRAPH VIEW must remove the extraction tables
        *and* the per-run vertex/message/output tables left by vx.run."""
        vx.sql(
            "CREATE MATERIALIZED GRAPH VIEW g AS "
            "NODES (users KEY id) EDGES (follows SRC a DST b)"
        )
        vx.run("g", PageRank(iterations=2))  # creates g_vertex/g_message/g_out
        for suffix in ("edge", "node", "vertex", "message", "out"):
            assert vx.db.has_table(f"g_{suffix}")
        vx.sql("DROP GRAPH VIEW g")
        for suffix in ("edge", "node", "vertex", "message", "out"):
            assert not vx.db.has_table(f"g_{suffix}")

    def test_drop_if_exists_is_quiet_either_way(self, vx):
        vx.sql("DROP GRAPH VIEW IF EXISTS g")  # never existed
        vx.sql(
            "CREATE MATERIALIZED GRAPH VIEW g AS "
            "NODES (users KEY id) EDGES (follows SRC a DST b)"
        )
        vx.sql("DROP GRAPH VIEW IF EXISTS g")
        assert not vx.db.has_table("g_edge")
        vx.sql("DROP GRAPH VIEW IF EXISTS g")  # idempotent

    def test_bare_engine_rejects_graph_view_statements(self):
        db = Database()
        with pytest.raises(PlanError, match="Vertexica layer"):
            db.execute(
                "CREATE GRAPH VIEW g AS NODES (t KEY id) EDGES (e SRC a DST b)"
            )
        with pytest.raises(PlanError, match="Vertexica layer"):
            db.execute("REFRESH GRAPH VIEW g")
