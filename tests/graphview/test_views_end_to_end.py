"""End-to-end graph views: extraction == explicit edge list, refresh, modes.

The acceptance bar: a view declared over a normalized multi-table schema
(including a join-derived co-occurrence edge) runs PageRank and
ConnectedComponents with results identical to loading the equivalent
explicit edge list, and materialized views survive ``refresh()`` after
base-table inserts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec, Vertexica
from repro.datasets import load_social_schema
from repro.errors import GraphViewError
from repro.programs import ConnectedComponents, PageRank


@pytest.fixture
def social_vx() -> Vertexica:
    """Vertexica over a seeded normalized social schema."""
    vx = Vertexica()
    load_social_schema(vx.db, num_users=80, num_follows=400, num_likes=240,
                       num_posts=30, seed=11)
    return vx


def social_view(directed: bool = True) -> GraphView:
    return GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=[
            EdgeSpec("follows", src="follower_id", dst="followee_id",
                     weight="closeness", directed=directed),
            CoEdgeSpec("likes", member="user_id", via="post_id"),
        ],
    )


def explicit_edges(vx: Vertexica, directed: bool = True):
    """The view's expected edge multiset, derived independently in Python."""
    follows = vx.sql(
        "SELECT follower_id, followee_id, closeness FROM follows"
    ).rows()
    src = [r[0] for r in follows]
    dst = [r[1] for r in follows]
    weight = [r[2] for r in follows]
    if not directed:
        src, dst = src + dst, dst + src
        weight = weight * 2
    by_post: dict[int, list[int]] = {}
    for user, post in vx.sql("SELECT user_id, post_id FROM likes").rows():
        by_post.setdefault(post, []).append(user)
    co: dict[tuple[int, int], int] = {}
    for members in by_post.values():
        for a in members:
            for b in members:
                if a != b:
                    co[(a, b)] = co.get((a, b), 0) + 1
    for (a, b), n in sorted(co.items()):
        src.append(a)
        dst.append(b)
        weight.append(float(n))
    return np.array(src), np.array(dst), np.array(weight, dtype=np.float64)


class TestExtractionMatchesExplicitLoad:
    def test_pagerank_identical(self, social_vx):
        vx = social_vx
        view_handle = vx.create_graph_view("sv", social_view())
        src, dst, weight = explicit_edges(vx)
        explicit = vx.load_graph("ex", src, dst, weights=weight, num_vertices=80)
        from_view = vx.run(view_handle, PageRank(iterations=8))
        from_explicit = vx.run(explicit, PageRank(iterations=8))
        assert from_view.values == from_explicit.values  # bit-identical

    def test_connected_components_identical(self, social_vx):
        vx = social_vx
        view_handle = vx.create_graph_view("sv", social_view(directed=False))
        src, dst, weight = explicit_edges(vx, directed=False)
        explicit = vx.load_graph("ex", src, dst, weights=weight, num_vertices=80)
        from_view = vx.run(view_handle, ConnectedComponents())
        from_explicit = vx.run(explicit, ConnectedComponents())
        assert from_view.values == from_explicit.values

    def test_extraction_counts(self, social_vx):
        handle = social_vx.create_graph_view("sv", social_view())
        stats = handle.last_extraction
        src, _, _ = explicit_edges(social_vx)
        assert stats.num_vertices == 80
        assert stats.num_edges == len(src)
        assert stats.num_queries == 3  # nodes + follows + co-likes
        assert stats.seconds >= 0
        assert "|E|" in stats.summary()


class TestMaterializedViews:
    def test_tables_are_planner_visible(self, social_vx):
        social_vx.create_graph_view("sv", social_view())
        edges = social_vx.sql("SELECT COUNT(*) FROM sv_edge").scalar()
        nodes = social_vx.sql("SELECT COUNT(*) FROM sv_node").scalar()
        assert edges > 0 and nodes == 80
        # Joinable against base tables like any other relation.
        joined = social_vx.sql(
            "SELECT COUNT(*) FROM sv_edge e JOIN users u ON e.src = u.id"
        ).scalar()
        assert joined == edges

    def test_refresh_after_insert(self, social_vx):
        vx = social_vx
        handle = vx.create_graph_view("sv", social_view())
        before = handle.resolve().num_edges
        vx.sql("INSERT INTO follows VALUES (0, 79, 2.5)")
        # Materialized: stale until refreshed.
        assert handle.resolve().num_edges == before
        refreshed = handle.refresh()
        assert refreshed.num_edges == before + 1
        # And the refreshed graph runs correctly end to end.
        src, dst, weight = explicit_edges(vx)
        explicit = vx.load_graph("ex", src, dst, weights=weight, num_vertices=80)
        assert (
            vx.run(handle, PageRank(iterations=5)).values
            == vx.run(explicit, PageRank(iterations=5)).values
        )

    def test_refresh_sees_new_vertices(self, social_vx):
        vx = social_vx
        handle = vx.create_graph_view("sv", social_view())
        vx.sql("INSERT INTO users VALUES (200, 'us', 1.0)")
        handle.refresh()
        assert handle.resolve().num_vertices == 81
        assert 200 in vx.run(handle, ConnectedComponents()).values


class TestVirtualViews:
    def test_every_run_sees_fresh_base_data(self, social_vx):
        vx = social_vx
        handle = vx.create_graph_view("sv", social_view(), materialized=False)
        first = handle.resolve().num_edges
        vx.sql("INSERT INTO follows VALUES (1, 78, 1.0)")
        assert handle.resolve().num_edges == first + 1  # no refresh() needed

    def test_run_accepts_bare_view_declaration(self, social_vx):
        result = social_vx.run(social_view(), PageRank(iterations=3))
        assert len(result.values) == 80

    def test_run_accepts_view_name(self, social_vx):
        social_vx.create_graph_view("sv", social_view())
        result = social_vx.run("sv", PageRank(iterations=3))
        assert len(result.values) == 80


class TestFacadeLifecycle:
    def test_duplicate_name_rejected(self, social_vx):
        social_vx.create_graph_view("sv", social_view())
        with pytest.raises(GraphViewError, match="already exists"):
            social_vx.create_graph_view("sv", social_view())
        social_vx.create_graph_view("sv", social_view(), replace=True)

    def test_replace_drops_displaced_tables(self, social_vx):
        social_vx.create_graph_view("sv", social_view())  # materialized
        assert social_vx.db.has_table("sv_edge")
        social_vx.create_graph_view(
            "sv", social_view(), materialized=False, replace=True
        )
        # The old extraction must not linger as stale planner-visible data.
        assert not social_vx.db.has_table("sv_edge")

    def test_view_and_specs_mutually_exclusive(self, social_vx):
        with pytest.raises(GraphViewError, match="not both"):
            social_vx.create_graph_view(
                "sv", social_view(), edges=EdgeSpec("follows", src="a", dst="b")
            )

    def test_drop_removes_tables_and_registry(self, social_vx):
        social_vx.create_graph_view("sv", social_view())
        social_vx.drop_graph_view("sv")
        assert not social_vx.db.has_table("sv_edge")
        with pytest.raises(GraphViewError, match="not defined"):
            social_vx.graph_view("sv")
        social_vx.drop_graph_view("sv", if_exists=True)  # no raise

    def test_missing_base_table_reports_spec(self, social_vx):
        with pytest.raises(GraphViewError, match="edge spec"):
            social_vx.create_graph_view(
                "sv", GraphView(edges=EdgeSpec("nope", src="a", dst="b"))
            )

    def test_filters_and_weights_apply(self, social_vx):
        vx = social_vx
        handle = vx.create_graph_view(
            "sv",
            GraphView(
                vertices=NodeSpec("users", key="id", where="country = 'us'"),
                edges=EdgeSpec("follows", src="follower_id", dst="followee_id",
                               where="closeness > 2.0"),
            ),
        )
        expected_edges = vx.sql(
            "SELECT COUNT(*) FROM follows WHERE closeness > 2.0"
        ).scalar()
        assert handle.resolve().num_edges == expected_edges

    def test_null_endpoints_dropped_null_weights_default(self, vx):
        vx.sql("CREATE TABLE rel (a INTEGER, b INTEGER, w FLOAT)")
        vx.sql("INSERT INTO rel VALUES (0, 1, NULL), (1, NULL, 2.0), (2, 0, 3.0)")
        handle = vx.create_graph_view(
            "g", GraphView(edges=EdgeSpec("rel", src="a", dst="b", weight="w"))
        )
        rows = sorted(vx.sql("SELECT src, dst, weight FROM g_edge").rows())
        assert rows == [(0, 1, 1.0), (2, 0, 3.0)]
