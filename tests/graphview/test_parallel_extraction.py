"""Parallel spec lowering and co-occurrence expansion modes.

The contract under test: every executor (serial / threads / processes)
and every exact co-occurrence lowering (group-by expansion vs SQL
self-join) produces **bit-identical** ``{name}_edge`` / ``{name}_node``
tables; the capped mode is openly lossy and must say so in its stats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Vertexica
from repro.datasets.relational import load_social_schema
from repro.errors import GraphViewError
from repro.graphview import (
    CoEdgeSpec,
    EdgeSpec,
    ExtractionOptions,
    GraphView,
    NodeSpec,
    expand_co_occurrence,
)
from repro.graphview import lowering


def social(vx: Vertexica, **overrides):
    scale = dict(num_users=120, num_follows=600, num_likes=900,
                 num_posts=10, likes_zipf=2.0)
    scale.update(overrides)
    return load_social_schema(vx.db, **scale)


def full_view(schema) -> GraphView:
    """All five spec kinds in one declaration."""
    return GraphView(
        vertices=NodeSpec(schema.users_table, key="id", where="karma > 1.0"),
        edges=[
            EdgeSpec(schema.follows_table, src="follower_id", dst="followee_id",
                     weight="closeness", where="closeness > 0.5"),
            EdgeSpec(schema.follows_table, src="follower_id", dst="followee_id",
                     directed=False),
            CoEdgeSpec(schema.likes_table, member="user_id", via="post_id"),
            CoEdgeSpec(schema.likes_table, member="user_id", via="post_id",
                       weight="COUNT(*) * 2", where="user_id < 60"),
        ],
    )


def graph_tables(vx: Vertexica, name: str):
    edges = vx.db.query_batch(f"SELECT src, dst, weight FROM {name}_edge")
    nodes = vx.db.query_batch(f"SELECT id FROM {name}_node")
    return {
        "src": edges.column("src").values,
        "dst": edges.column("dst").values,
        "weight": edges.column("weight").values,
        "id": nodes.column("id").values,
    }


def assert_tables_identical(a: dict, b: dict) -> None:
    for key in ("src", "dst", "weight", "id"):
        assert a[key].dtype == b[key].dtype, key
        assert np.array_equal(a[key], b[key]), f"{key} differs"


class TestExecutorParity:
    @pytest.mark.parametrize(
        "options",
        [
            ExtractionOptions(executor="threads", n_workers=4, slice_min_rows=50),
            ExtractionOptions(executor="threads", n_workers=2, slice_min_rows=10_000),
            ExtractionOptions(executor="processes", n_workers=2, slice_min_rows=200),
        ],
        ids=["threads-sliced", "threads-unsliced", "processes"],
    )
    def test_bit_identical_to_serial(self, options):
        vx = Vertexica()
        schema = social(vx)
        view = full_view(schema)
        vx.create_graph_view(
            "base", view, extraction=ExtractionOptions(executor="serial")
        )
        vx.create_graph_view("par", view, extraction=options)
        assert_tables_identical(
            graph_tables(vx, "base"), graph_tables(vx, "par")
        )

    def test_sliced_scan_fans_out(self):
        vx = Vertexica()
        schema = social(vx)
        options = ExtractionOptions(
            executor="threads", n_workers=4, slice_min_rows=50
        )
        handle = vx.create_graph_view(
            "fan", full_view(schema), extraction=options
        )
        stats = handle.last_extraction
        assert stats.parallelism == 4
        # Slicing split at least one base-table scan into multiple queries:
        # 6 logical jobs (1 node + 1 directed + 2 undirected + 1 side +
        # 1 self-join) must grow.
        assert stats.num_queries > 6
        assert stats.lower_seconds >= 0.0 and stats.load_seconds >= 0.0
        assert "workers=4" in stats.summary()


class TestCoOccurrenceModes:
    def test_exact_expansion_matches_selfjoin(self):
        vx = Vertexica()
        schema = social(vx)
        view = GraphView(
            edges=CoEdgeSpec(schema.likes_table, member="user_id", via="post_id")
        )
        vx.create_graph_view(
            "sj", view, extraction=ExtractionOptions(co_mode="selfjoin")
        )
        vx.create_graph_view(
            "ex", view, extraction=ExtractionOptions(co_mode="exact")
        )
        assert_tables_identical(graph_tables(vx, "sj"), graph_tables(vx, "ex"))

    def test_streamed_compaction_is_lossless(self, monkeypatch):
        # Force the pair buffer to flush every 64 pairs so the streamed
        # merge path runs many times over the skewed groups.
        monkeypatch.setattr(lowering, "_EXPANSION_FLUSH_PAIRS", 64)
        vx = Vertexica()
        schema = social(vx)
        view = GraphView(
            edges=CoEdgeSpec(schema.likes_table, member="user_id", via="post_id")
        )
        vx.create_graph_view(
            "sj", view, extraction=ExtractionOptions(co_mode="selfjoin")
        )
        vx.create_graph_view(
            "ex", view, extraction=ExtractionOptions(co_mode="exact")
        )
        assert_tables_identical(graph_tables(vx, "sj"), graph_tables(vx, "ex"))

    def test_custom_weight_always_takes_selfjoin(self):
        # Only COUNT(*) decomposes per via group; a custom weight must give
        # the same answer whatever co_mode asks for.
        vx = Vertexica()
        schema = social(vx)
        view = GraphView(
            edges=CoEdgeSpec(schema.likes_table, member="user_id", via="post_id",
                             weight="COUNT(*) * 2")
        )
        vx.create_graph_view(
            "sj", view, extraction=ExtractionOptions(co_mode="selfjoin")
        )
        vx.create_graph_view(
            "ex", view, extraction=ExtractionOptions(co_mode="exact")
        )
        assert_tables_identical(graph_tables(vx, "sj"), graph_tables(vx, "ex"))

    def test_capped_truncates_and_reports(self):
        vx = Vertexica()
        schema = social(vx)
        view = GraphView(
            edges=CoEdgeSpec(schema.likes_table, member="user_id", via="post_id")
        )
        exact = vx.create_graph_view(
            "ex", view, extraction=ExtractionOptions(co_mode="exact")
        )
        capped = vx.create_graph_view(
            "cap", view,
            extraction=ExtractionOptions(co_mode="capped", co_cap=4),
        )
        stats = capped.last_extraction
        assert stats.truncated_groups > 0
        assert stats.num_edges < exact.last_extraction.num_edges
        assert f"truncated_groups={stats.truncated_groups}" in stats.summary()
        # Surviving members are each group's top-4 by like count, so every
        # capped pair must exist in the exact graph with weight >= capped.
        ex, cap = graph_tables(vx, "ex"), graph_tables(vx, "cap")
        exact_pairs = {
            (s, d): w for s, d, w in zip(ex["src"], ex["dst"], ex["weight"])
        }
        for s, d, w in zip(cap["src"], cap["dst"], cap["weight"]):
            assert exact_pairs[(s, d)] >= w

    def test_cap_defaults_to_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_CO_GROUP_CAP", "4")
        vx = Vertexica()
        schema = social(vx)
        view = GraphView(
            edges=CoEdgeSpec(schema.likes_table, member="user_id", via="post_id")
        )
        handle = vx.create_graph_view(
            "cap", view, extraction=ExtractionOptions(co_mode="capped")
        )
        assert handle.last_extraction.truncated_groups > 0


class TestExpansionUnit:
    def test_pair_counts_sum_over_groups(self):
        members = np.array([1, 2, 3, 1, 2, 9], dtype=np.int64)
        vias = np.array([0, 0, 0, 5, 5, 5], dtype=np.int64)
        src, dst, weight, truncated = expand_co_occurrence(members, vias)
        pairs = dict(zip(zip(src, dst), weight))
        assert truncated == 0
        # (1, 2) co-occurs in both groups, every other pair in one.
        assert pairs[(1, 2)] == 2.0 and pairs[(2, 1)] == 2.0
        assert pairs[(1, 3)] == 1.0 and pairs[(2, 9)] == 1.0
        assert (1, 1) not in pairs
        assert np.array_equal(src, np.sort(src))

    def test_cap_keeps_largest_members_by_count(self):
        # Member 7 likes the via twice, members 1/2/3 once each: cap=2
        # keeps {7, 1} (count desc, then member asc as the tiebreak).
        members = np.array([7, 7, 1, 2, 3], dtype=np.int64)
        vias = np.zeros(5, dtype=np.int64)
        src, dst, weight, truncated = expand_co_occurrence(members, vias, cap=2)
        assert truncated == 1
        assert set(zip(src, dst)) == {(1, 7), (7, 1)}
        assert list(weight) == [2.0, 2.0]

    def test_single_member_groups_emit_nothing(self):
        members = np.array([1, 2, 3], dtype=np.int64)
        vias = np.array([0, 1, 2], dtype=np.int64)
        src, dst, weight, truncated = expand_co_occurrence(members, vias)
        assert len(src) == 0 and truncated == 0


class TestFailureHygiene:
    def test_poisoned_spec_leaves_no_scratch_tables(self):
        # A sliced, threaded extraction that fails at planning must drop
        # every _gvslice scratch table on its way out (try/finally), not
        # leak them into the catalog.
        vx = Vertexica()
        schema = social(vx)
        before = set(vx.db.catalog.table_names())
        view = GraphView(
            vertices=NodeSpec(schema.users_table, key="id"),
            edges=EdgeSpec(schema.follows_table, src="follower_id",
                           dst="followee_id", where="no_such_column > 1"),
        )
        options = ExtractionOptions(
            executor="threads", n_workers=4, slice_min_rows=50
        )
        with pytest.raises(GraphViewError, match="edge spec"):
            vx.create_graph_view("poisoned", view, extraction=options)
        after = set(vx.db.catalog.table_names())
        assert after == before
        assert not any(name.startswith("_gvslice") for name in after)

    def test_serial_failure_names_the_spec(self):
        vx = Vertexica()
        schema = social(vx)
        view = GraphView(vertices=NodeSpec("missing_table", key="id"))
        with pytest.raises(GraphViewError, match="node spec"):
            vx.create_graph_view("nope", view)


class TestOptionsValidation:
    def test_bad_executor_rejected(self):
        with pytest.raises(GraphViewError, match="executor"):
            ExtractionOptions(executor="fibers").validate()

    def test_bad_co_mode_rejected(self):
        with pytest.raises(GraphViewError, match="co_mode"):
            ExtractionOptions(co_mode="fuzzy").validate()

    def test_bad_cap_rejected(self):
        with pytest.raises(GraphViewError, match="co_cap"):
            ExtractionOptions(co_cap=0).validate()

    def test_auto_resolves_by_worker_count(self):
        assert ExtractionOptions(executor="auto", n_workers=1).resolved_executor() == "serial"
        assert ExtractionOptions(executor="auto", n_workers=3).resolved_executor() == "threads"
        assert ExtractionOptions(n_workers=0).resolved_workers() >= 1
