"""Analytics on incrementally refreshed views match freshly extracted ones.

Because both refresh paths produce bit-identical graph tables (canonical
edge order), the vertex-program results must be *exactly* equal — float
for float — not merely close.  Also guards the cross-superstep
``EdgeCache``: it must never leak a pre-refresh edge set into a run that
starts after the refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec, Vertexica
from repro.datasets import load_social_schema
from repro.programs import ConnectedComponents, PageRank


def social_view(directed: bool = True) -> GraphView:
    return GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=[
            EdgeSpec(
                "follows",
                src="follower_id",
                dst="followee_id",
                weight="closeness",
                directed=directed,
            ),
            CoEdgeSpec("likes", member="user_id", via="post_id"),
        ],
    )


def make_vx(seed: int = 31) -> Vertexica:
    vx = Vertexica()
    load_social_schema(
        vx.db, num_users=60, num_follows=300, num_likes=160, num_posts=20, seed=seed
    )
    return vx


def apply_dml(vx: Vertexica) -> None:
    vx.sql("INSERT INTO follows VALUES (0, 59, 2.5), (59, 0, 0.5)")
    vx.sql("DELETE FROM follows WHERE follower_id = 7")
    vx.sql("UPDATE follows SET closeness = 4.0 WHERE followee_id = 3")
    vx.sql("INSERT INTO likes VALUES (11, 2), (12, 2)")
    vx.sql("INSERT INTO users VALUES (200, 'us', 1.0)")


class TestResultsMatchFreshExtraction:
    @pytest.mark.parametrize(
        "program", [PageRank(iterations=8), ConnectedComponents()], ids=["pr", "cc"]
    )
    def test_incremental_equals_fresh(self, program):
        directed = isinstance(program, PageRank)
        vx = make_vx()
        live = vx.create_graph_view("live", social_view(directed))
        apply_dml(vx)
        live.refresh()
        assert live.last_extraction.mode == "incremental"
        fresh = vx.create_graph_view("fresh", social_view(directed))
        assert (
            vx.run(live, program).values == vx.run(fresh, program).values
        )  # bit-identical, no tolerance

    def test_incremental_equals_fresh_scalar_path(self):
        """The per-vertex scalar worker consumes messages in table order —
        the strictest consumer of canonical edge ordering."""
        vx = make_vx(seed=32)
        live = vx.create_graph_view("live", social_view())
        apply_dml(vx)
        live.refresh()
        assert live.last_extraction.mode == "incremental"
        fresh = vx.create_graph_view("fresh", social_view())
        program = PageRank(iterations=5)
        assert (
            vx.run(live, program, compute_strategy="scalar").values
            == vx.run(fresh, program, compute_strategy="scalar").values
        )


class TestEdgeCacheFreshness:
    def test_cached_runs_see_refreshed_edges(self):
        """Two ``vx.run`` calls with ``cache_edges=True`` around a refresh:
        the second run must compute on the refreshed edge relation, and
        agree exactly with a cache-less run on the same tables."""
        vx = make_vx(seed=33)
        live = vx.create_graph_view("live", social_view())
        program = PageRank(iterations=6)
        before = vx.run(live, program, cache_edges=True).values

        apply_dml(vx)
        live.refresh()
        assert live.last_extraction.mode == "incremental"

        after_cached = vx.run(live, program, cache_edges=True).values
        after_uncached = vx.run(live, program, cache_edges=False).values
        assert after_cached == after_uncached
        assert after_cached != before  # the DML genuinely moved the ranks

    def test_isolated_vertex_appears_after_refresh(self):
        vx = make_vx(seed=34)
        live = vx.create_graph_view("live", social_view())
        vx.sql("INSERT INTO users VALUES (300, 'de', 9.9)")
        live.refresh()
        assert live.last_extraction.mode == "incremental"
        values = vx.run(live, ConnectedComponents(), cache_edges=True).values
        assert 300 in values

    def test_vertex_disappears_when_last_derivation_goes(self):
        vx = Vertexica()
        vx.sql("CREATE TABLE rel (a INTEGER, b INTEGER)")
        vx.sql("INSERT INTO rel VALUES (0, 1), (1, 2), (2, 0)")
        live = vx.create_graph_view("live", GraphView(edges=EdgeSpec("rel", src="a", dst="b")))
        vx.sql("DELETE FROM rel WHERE a = 1")
        # Tiny table: one deleted row exceeds the default delta fraction,
        # so insist on the incremental path to exercise it.
        live.refresh(incremental=True)
        assert live.last_extraction.mode == "incremental"
        node_ids = [r[0] for r in vx.sql("SELECT id FROM live_node").rows()]
        # 2 still derives from (2, 0); nothing references... all of 0,1,2
        # remain endpoints except none vanished here: (0,1) and (2,0) stay.
        assert node_ids == [0, 1, 2]
        vx.sql("DELETE FROM rel WHERE b = 1")
        live.refresh(incremental=True)
        node_ids = [r[0] for r in vx.sql("SELECT id FROM live_node").rows()]
        assert node_ids == [0, 2]  # 1 lost its last derivation

    def test_weights_update_exactly(self):
        vx = Vertexica()
        vx.sql("CREATE TABLE rel (a INTEGER, b INTEGER, w FLOAT)")
        vx.sql("INSERT INTO rel VALUES (0, 1, 1.25), (1, 0, 2.5)")
        live = vx.create_graph_view(
            "live", GraphView(edges=EdgeSpec("rel", src="a", dst="b", weight="w * 3.0"))
        )
        vx.sql("UPDATE rel SET w = 0.1 WHERE a = 0")
        live.refresh(incremental=True)
        assert live.last_extraction.mode == "incremental"
        rows = vx.sql("SELECT src, dst, weight FROM live_edge").rows()
        assert rows == [(0, 1, pytest.approx(0.1 * 3.0, abs=0)), (1, 0, 7.5)]
        weights = np.array([r[2] for r in rows])
        assert weights.dtype == np.float64
