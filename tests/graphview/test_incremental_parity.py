"""Randomized DML parity: incremental refresh == full re-extraction, bit-exact.

The lockdown suite for delta-based view maintenance.  Seeded random
sequences of INSERT / DELETE / UPDATE run against the normalized social
schema (:func:`repro.datasets.load_social_schema`); after every few steps
the materialized view refreshes incrementally and a shadow copy of the
same declaration re-extracts from scratch.  Both must produce *identical*
graph tables — same vertex ids, same edge triples, same weights, same row
order (both paths store edges canonically, so equality here is bit-level,
not just multiset-level).

Run matrix: every spec kind (plain edges, undirected edges, join-derived
co-occurrence edges, all combined with filtered nodes) × every seed in
``INCREMENTAL_FUZZ_SEEDS`` (comma-separated; default one fixed seed for
tier-1 — CI sweeps more in a separate non-blocking job).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec, Vertexica
from repro.datasets import load_social_schema
from repro.graphview.view import GraphViewHandle

SEEDS = [int(s) for s in os.environ.get("INCREMENTAL_FUZZ_SEEDS", "7").split(",")]

#: DML steps per (spec kind, seed) — the acceptance bar asks for >= 200.
N_STEPS = int(os.environ.get("INCREMENTAL_FUZZ_STEPS", "200"))
REFRESH_EVERY = 8

NUM_USERS = 60
NUM_POSTS = 18

VIEWS = {
    "edge_directed": GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=EdgeSpec(
            "follows", src="follower_id", dst="followee_id", weight="closeness"
        ),
    ),
    "edge_undirected": GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=EdgeSpec(
            "follows",
            src="follower_id",
            dst="followee_id",
            weight="closeness * 2.0",
            directed=False,
        ),
    ),
    "edge_filtered": GraphView(
        vertices=NodeSpec("users", key="id", where="karma > 1.0"),
        edges=EdgeSpec(
            "follows", src="follower_id", dst="followee_id", where="closeness > 1.5"
        ),
    ),
    "co_edge": GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=CoEdgeSpec("likes", member="user_id", via="post_id"),
    ),
    "combined": GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=[
            EdgeSpec(
                "follows", src="follower_id", dst="followee_id", weight="closeness"
            ),
            CoEdgeSpec("likes", member="user_id", via="post_id"),
        ],
    ),
}


def fresh_vertexica(seed: int) -> Vertexica:
    vx = Vertexica()
    load_social_schema(
        vx.db,
        num_users=NUM_USERS,
        num_follows=300,
        num_likes=180,
        num_posts=NUM_POSTS,
        seed=seed,
    )
    return vx


def random_dml(vx: Vertexica, rng: np.random.Generator) -> None:
    """One random INSERT / DELETE / UPDATE against users/follows/likes."""
    op = int(rng.integers(0, 9))
    uid = int(rng.integers(0, NUM_USERS + 20))
    other = int(rng.integers(0, NUM_USERS + 20))
    post = int(rng.integers(0, NUM_POSTS))
    w = round(float(rng.uniform(0.1, 5.0)), 3)
    if op == 0:
        vx.sql(f"INSERT INTO follows VALUES ({uid}, {other}, {w})")
    elif op == 1:
        vx.sql(
            "INSERT INTO follows VALUES "
            f"({uid}, {other}, {w}), ({other}, {uid}, {w})"
        )
    elif op == 2:
        vx.sql(f"DELETE FROM follows WHERE follower_id = {uid}")
    elif op == 3:
        vx.sql(
            f"UPDATE follows SET closeness = {w} WHERE followee_id = {other}"
        )
    elif op == 4:
        vx.sql(f"UPDATE follows SET followee_id = {other} WHERE follower_id = {uid}")
    elif op == 5:
        vx.sql(f"INSERT INTO likes VALUES ({uid}, {post})")
    elif op == 6:
        vx.sql(f"DELETE FROM likes WHERE post_id = {post} AND user_id < {uid}")
    elif op == 7:
        vx.sql(f"INSERT INTO users VALUES ({uid + 1000}, 'xx', {w})")
    else:
        vx.sql(f"UPDATE users SET karma = {w} WHERE id = {uid}")


def graph_tables(vx: Vertexica, name: str):
    edges = vx.sql(f"SELECT src, dst, weight FROM {name}_edge").rows()
    nodes = vx.sql(f"SELECT id FROM {name}_node").rows()
    return edges, nodes


def assert_view_parity(vx: Vertexica, handle: GraphViewHandle, tag: str) -> None:
    """Full-extract a shadow of the same declaration and compare tables
    positionally (canonical order makes row order part of the contract)."""
    shadow = GraphViewHandle(vx.db, vx.storage, tag, handle.view)
    shadow.refresh(incremental=False)
    try:
        assert graph_tables(vx, handle.name) == graph_tables(vx, tag)
    finally:
        shadow.drop()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", sorted(VIEWS))
def test_incremental_matches_full_under_random_dml(kind: str, seed: int):
    vx = fresh_vertexica(seed)
    handle = vx.create_graph_view("live", VIEWS[kind])
    rng = np.random.default_rng(seed * 7919 + 13)
    incremental_refreshes = 0
    for step in range(N_STEPS):
        random_dml(vx, rng)
        if (step + 1) % REFRESH_EVERY == 0 or step == N_STEPS - 1:
            handle.refresh()
            if handle.last_extraction.mode == "incremental":
                incremental_refreshes += 1
            assert_view_parity(vx, handle, f"shadow_{step}")
    # The suite is vacuous if everything silently fell back to full.
    assert incremental_refreshes >= (N_STEPS // REFRESH_EVERY) // 2


class TestFallbacks:
    """The paths that must *not* take the delta shortcut still agree."""

    def test_large_delta_falls_back_to_full(self):
        vx = fresh_vertexica(3)
        handle = vx.create_graph_view(
            "live", VIEWS["edge_directed"], delta_threshold=0.1
        )
        vx.sql("DELETE FROM follows WHERE closeness > 1.0")  # way over 10%
        handle.refresh()
        assert handle.last_extraction.mode == "full"
        assert_view_parity(vx, handle, "shadow_big")

    def test_forced_incremental_ignores_threshold(self):
        vx = fresh_vertexica(4)
        handle = vx.create_graph_view(
            "live", VIEWS["edge_directed"], delta_threshold=0.0
        )
        vx.sql("INSERT INTO follows VALUES (0, 1, 2.0)")
        handle.refresh(incremental=True)
        assert handle.last_extraction.mode == "incremental"
        assert handle.last_extraction.delta_rows == 1
        assert_view_parity(vx, handle, "shadow_forced")

    def test_forced_full_never_patches(self):
        vx = fresh_vertexica(5)
        handle = vx.create_graph_view("live", VIEWS["combined"])
        vx.sql("INSERT INTO follows VALUES (0, 1, 2.0)")
        handle.refresh(incremental=False)
        assert handle.last_extraction.mode == "full"

    def test_truncate_breaks_window_full_refresh(self):
        vx = fresh_vertexica(6)
        handle = vx.create_graph_view("live", VIEWS["co_edge"])
        vx.sql("TRUNCATE likes")
        handle.refresh()
        assert handle.last_extraction.mode == "full"
        assert handle.resolve().num_edges == 0
        assert_view_parity(vx, handle, "shadow_trunc")

    def test_dropped_base_table_detected(self):
        vx = fresh_vertexica(8)
        handle = vx.create_graph_view("live", VIEWS["edge_directed"])
        follows = vx.sql("SELECT follower_id, followee_id, closeness FROM follows").rows()
        vx.sql("DROP TABLE follows")
        vx.sql(
            "CREATE TABLE follows (follower_id INTEGER, followee_id INTEGER, "
            "closeness FLOAT)"
        )
        for a, b, w in follows[:50]:
            vx.sql(f"INSERT INTO follows VALUES ({a}, {b}, {w})")
        handle.refresh()  # uid mismatch -> full, not a bogus delta
        assert handle.last_extraction.mode == "full"
        assert handle.resolve().num_edges == 50

    def test_dense_co_group_over_cap_falls_back(self, monkeypatch):
        # A touched via group denser than the cap has no incremental
        # form: the O(group²) per-group recompute is capped out and the
        # refresh takes the full path (bit-identical tables either way).
        from repro.graphview import maintenance

        vx = fresh_vertexica(13)
        handle = vx.create_graph_view("live", VIEWS["co_edge"])
        monkeypatch.setattr(maintenance, "MAX_INCREMENTAL_CO_GROUP", 4)
        rows = ", ".join(f"({uid}, 0)" for uid in range(40, 48))
        vx.sql(f"INSERT INTO likes VALUES {rows}")  # post 0 now > 4 likers
        handle.refresh()
        assert handle.last_extraction.mode == "full"
        assert_view_parity(vx, handle, "shadow_cap")
        # The cap is per touched group: after the full rebuild, DML on a
        # *small* group still patches incrementally even though the dense
        # group exists untouched.
        vx.sql("INSERT INTO likes VALUES (50, 17)")
        handle.refresh()
        assert handle.last_extraction.mode == "incremental"
        assert_view_parity(vx, handle, "shadow_cap_small")

    def test_dense_group_small_delta_stays_incremental(self, monkeypatch):
        # The budget is |changed| x |group union|, not group size: one new
        # liker touching a group 3x denser than the cap still patches
        # incrementally (changed=1, so 1 x |union| fits in cap^2).
        from repro.graphview import maintenance

        vx = fresh_vertexica(14)
        handle = vx.create_graph_view("live", VIEWS["co_edge"])
        monkeypatch.setattr(maintenance, "MAX_INCREMENTAL_CO_GROUP", 8)
        rows = ", ".join(f"({uid}, 3)" for uid in range(1000, 1024))
        vx.sql(f"INSERT INTO likes VALUES {rows}")  # 24 changed members
        handle.refresh()  # 24 x ~24 > 64: over budget, full
        assert handle.last_extraction.mode == "full"
        vx.sql("INSERT INTO likes VALUES (2000, 3)")  # 1 changed member
        handle.refresh()
        assert handle.last_extraction.mode == "incremental"
        assert handle.last_fallback_reason is None
        assert_view_parity(vx, handle, "shadow_dense_small")

    def test_budget_fallback_reports_reason(self, monkeypatch):
        from repro.graphview import maintenance

        vx = fresh_vertexica(13)
        handle = vx.create_graph_view("live", VIEWS["co_edge"])
        monkeypatch.setattr(maintenance, "MAX_INCREMENTAL_CO_GROUP", 4)
        rows = ", ".join(f"({uid}, 0)" for uid in range(40, 52))
        vx.sql(f"INSERT INTO likes VALUES {rows}")
        handle.refresh()
        assert handle.last_extraction.mode == "full"
        assert "budget 4^2" in handle.last_fallback_reason
        assert "falling back to full recompute" in handle.last_fallback_reason

    def test_env_knob_overrides_module_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_CO_GROUP_CAP", "4")
        vx = fresh_vertexica(13)
        handle = vx.create_graph_view("live", VIEWS["co_edge"])
        rows = ", ".join(f"({uid}, 0)" for uid in range(40, 52))
        vx.sql(f"INSERT INTO likes VALUES {rows}")
        handle.refresh()  # module default is generous; the env cap bites
        assert handle.last_extraction.mode == "full"
        assert "budget 4^2" in handle.last_fallback_reason
        assert_view_parity(vx, handle, "shadow_env_cap")

    def test_fallback_reason_lifecycle(self):
        vx = fresh_vertexica(15)
        handle = vx.create_graph_view("live", VIEWS["edge_directed"])
        # create_graph_view's initial refresh had nothing to patch.
        assert handle.last_fallback_reason == "no maintenance state (first refresh)"
        vx.sql("INSERT INTO follows VALUES (1, 2, 1.5)")
        handle.refresh()
        assert handle.last_extraction.mode == "incremental"
        assert handle.last_fallback_reason is None
        # An explicit full refresh is not a fallback; the reason field
        # tracks only abandoned *incremental* attempts.
        handle.refresh(incremental=False)
        assert handle.last_fallback_reason is None

    def test_custom_weight_reason_names_the_cause(self):
        vx = fresh_vertexica(9)
        view = GraphView(
            vertices=NodeSpec("users", key="id"),
            edges=CoEdgeSpec(
                "likes", member="user_id", via="post_id", weight="COUNT(*) * 2"
            ),
        )
        handle = vx.create_graph_view("live", view)
        vx.sql("INSERT INTO likes VALUES (0, 1)")
        handle.refresh()
        assert handle.last_extraction.mode == "full"
        assert handle.last_fallback_reason == "spec has no incremental lowering"

    def test_custom_co_edge_weight_always_full(self):
        vx = fresh_vertexica(9)
        view = GraphView(
            vertices=NodeSpec("users", key="id"),
            edges=CoEdgeSpec(
                "likes", member="user_id", via="post_id", weight="COUNT(*) * 2"
            ),
        )
        handle = vx.create_graph_view("live", view)
        vx.sql("INSERT INTO likes VALUES (0, 1)")
        handle.refresh()
        assert handle.last_extraction.mode == "full"  # AVG/MAX-style: no delta form
        assert_view_parity(vx, handle, "shadow_custom")

    def test_dropping_last_view_disarms_capture(self):
        vx = fresh_vertexica(11)
        vx.create_graph_view("live", VIEWS["edge_directed"])
        follows = vx.db.table("follows")
        assert follows.changelog.enabled
        vx.drop_graph_view("live")
        assert not follows.changelog.enabled
        vx.sql("DELETE FROM follows WHERE follower_id = 0")
        assert follows.changelog.retained_rows == 0  # nothing materialized

    def test_shared_table_keeps_capture_while_another_view_remains(self):
        vx = fresh_vertexica(12)
        vx.create_graph_view("a", VIEWS["edge_directed"])
        vx.create_graph_view("b", VIEWS["edge_undirected"])
        vx.drop_graph_view("a")
        assert vx.db.table("follows").changelog.enabled  # b still derives
        vx.sql("INSERT INTO follows VALUES (0, 1, 1.0)")
        handle = vx.graph_view("b")
        handle.refresh()
        assert handle.last_extraction.mode == "incremental"
        vx.drop_graph_view("b")
        assert not vx.db.table("follows").changelog.enabled

    def test_no_op_refresh_is_incremental_and_free(self):
        vx = fresh_vertexica(10)
        handle = vx.create_graph_view("live", VIEWS["combined"])
        before = graph_tables(vx, "live")
        handle.refresh()
        stats = handle.last_extraction
        assert stats.mode == "incremental"
        assert stats.delta_rows == 0 and stats.num_queries == 0
        assert graph_tables(vx, "live") == before
