"""Unit tests: graph-view specs, SQL lowering, expression rendering."""

from __future__ import annotations

import pytest

from repro.engine.sql.parser import Parser
from repro.engine.sql.lexer import tokenize
from repro.errors import GraphViewError
from repro.graphview import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec
from repro.graphview.compiler import edge_queries, node_queries, render_expression


class TestSpecValidation:
    def test_empty_view_rejected(self):
        with pytest.raises(GraphViewError, match="at least one"):
            GraphView()

    def test_bad_identifiers_rejected(self):
        with pytest.raises(GraphViewError, match="identifier"):
            GraphView(vertices=NodeSpec("users; DROP TABLE x", key="id"))
        with pytest.raises(GraphViewError, match="identifier"):
            GraphView(edges=EdgeSpec("follows", src="a b", dst="c"))
        with pytest.raises(GraphViewError, match="identifier"):
            GraphView(name="not a name", edges=EdgeSpec("e", src="a", dst="b"))

    def test_co_spec_member_via_must_differ(self):
        with pytest.raises(GraphViewError, match="different columns"):
            GraphView(edges=CoEdgeSpec("likes", member="post_id", via="post_id"))

    def test_single_specs_promoted_to_tuples(self):
        view = GraphView(
            vertices=NodeSpec("users", key="id"),
            edges=EdgeSpec("follows", src="a", dst="b"),
        )
        assert len(view.vertices) == 1
        assert len(view.edges) == 1

    def test_non_spec_entries_rejected(self):
        with pytest.raises(GraphViewError, match="entries must be"):
            GraphView(edges=["not a spec"])


class TestCompiler:
    def test_node_query_shape(self):
        view = GraphView(vertices=NodeSpec("users", key="uid", where="karma > 1"))
        (sql,) = node_queries(view)
        assert sql == (
            "SELECT CAST(uid AS INTEGER) AS id FROM users WHERE karma > 1"
        )

    def test_directed_edge_one_query(self):
        view = GraphView(edges=EdgeSpec("follows", src="a", dst="b"))
        assert len(edge_queries(view)) == 1

    def test_undirected_edge_two_queries(self):
        view = GraphView(edges=EdgeSpec("follows", src="a", dst="b", directed=False))
        forward, backward = edge_queries(view)
        assert "CAST(a AS INTEGER) AS src" in forward
        assert "CAST(b AS INTEGER) AS src" in backward

    def test_default_weight_is_one(self):
        view = GraphView(edges=EdgeSpec("follows", src="a", dst="b"))
        (sql,) = edge_queries(view)
        assert "CAST(1.0 AS FLOAT) AS weight" in sql

    def test_co_edge_groups_on_member_pair(self):
        view = GraphView(edges=CoEdgeSpec("likes", member="user_id", via="post_id"))
        (sql,) = edge_queries(view)
        # Flat self-join over the base table, grouped on the casted member
        # pair by position so group keys and output see identical values.
        assert "FROM likes AS a JOIN likes AS b ON a.post_id = b.post_id" in sql
        assert "GROUP BY 1, 2" in sql
        assert "COUNT(*)" in sql
        assert "CAST(a.user_id AS INTEGER) <> CAST(b.user_id AS INTEGER)" in sql

    def test_co_edge_filter_qualified_onto_both_sides(self):
        view = GraphView(
            edges=CoEdgeSpec("likes", member="user_id", via="post_id",
                             where="score > 0.5 AND likes.flag = 1")
        )
        (sql,) = edge_queries(view)
        assert "(a.score > 0.5)" in sql and "(a.flag = 1)" in sql
        assert "(b.score > 0.5)" in sql and "(b.flag = 1)" in sql

    def test_queries_are_parseable_sql(self, db):
        """Every compiled query must be valid for the engine's parser."""
        from repro.engine.sql.parser import parse_statement

        view = GraphView(
            vertices=NodeSpec("users", key="id", where="country = 'us'"),
            edges=[
                EdgeSpec("follows", src="a", dst="b", weight="w * 2", directed=False),
                CoEdgeSpec("likes", member="user_id", via="post_id",
                           weight="COUNT(*) + 1", where="post_id > 0"),
            ],
        )
        for sql in node_queries(view) + edge_queries(view):
            parse_statement(sql)  # raises on malformed SQL


def _roundtrip(sql_expr: str) -> str:
    parser = Parser(tokenize(sql_expr))
    return render_expression(parser.parse_expression())


class TestExpressionRenderer:
    @pytest.mark.parametrize(
        "expr",
        [
            "karma > 5.0",
            "a + b * c",
            "country IN ('us', 'de')",
            "name LIKE 'a%'",
            "age BETWEEN 10 AND 20",
            "value IS NOT NULL",
            "NOT (a = 1 OR b = 2)",
            "CASE WHEN x > 0 THEN 1 ELSE 0 END",
            "CAST(x AS FLOAT)",
            "COUNT(*)",
            "COUNT(DISTINCT uid)",
            "COALESCE(x, 0) - 1",
            "'it''s' || 'quoted'",
            "-x",
            "TRUE",
            "NULL",
        ],
    )
    def test_roundtrip_is_stable(self, expr):
        """render(parse(e)) must itself parse, to the same tree."""
        once = _roundtrip(expr)
        assert _roundtrip(once) == once

    def test_precedence_preserved(self):
        rendered = _roundtrip("a + b * c")
        assert rendered == "(a + (b * c))"
