"""Graph views survive checkpoint/restore: specs, tables, refreshability."""

from __future__ import annotations

import os

import pytest

from repro import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec, Vertexica
from repro.datasets import load_social_schema
from repro.errors import EngineError, GraphViewError
from repro.programs import PageRank


def social_view() -> GraphView:
    return GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=[
            EdgeSpec(
                "follows", src="follower_id", dst="followee_id", weight="closeness"
            ),
            CoEdgeSpec("likes", member="user_id", via="post_id"),
        ],
    )


@pytest.fixture
def vx() -> Vertexica:
    vx = Vertexica()
    load_social_schema(
        vx.db, num_users=50, num_follows=250, num_likes=150, num_posts=20, seed=21
    )
    return vx


def checkpoint_dir(tmp_path) -> str:
    return str(tmp_path / "ckpt")


class TestRoundTrip:
    def test_materialized_view_round_trips(self, vx, tmp_path):
        handle = vx.create_graph_view("sv", social_view(), delta_threshold=0.4)
        edges_before = vx.sql("SELECT src, dst, weight FROM sv_edge").rows()
        vx.checkpoint(checkpoint_dir(tmp_path))

        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        back = restored.graph_view("sv")
        assert back.view == handle.view  # spec equality, field for field
        assert back.materialized and back.delta_threshold == 0.4
        # The materialized tables came back intact — no re-extraction ran.
        assert restored.sql("SELECT src, dst, weight FROM sv_edge").rows() == edges_before
        assert back.resolve().num_edges == len(edges_before)

    def test_virtual_view_round_trips_as_declaration(self, vx, tmp_path):
        vx.create_graph_view("vv", social_view(), materialized=False)
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        back = restored.graph_view("vv")
        assert not back.materialized
        assert not restored.db.has_table("vv_edge")  # nothing materialized
        restored.sql("INSERT INTO follows VALUES (0, 49, 1.0)")
        assert back.resolve().num_edges > 0  # re-extracts on demand

    def test_unknown_view_still_unknown(self, vx, tmp_path):
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        with pytest.raises(GraphViewError, match="not defined"):
            restored.graph_view("nope")

    def test_last_refreshed_versions_persisted(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        expected = {
            t: vx.db.table(t).version for t in ("users", "follows", "likes")
        }
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        assert restored.graph_view("sv").base_table_versions() == expected


class TestPostRestoreRefresh:
    def test_refresh_works_and_reseeds_incremental(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        back = restored.graph_view("sv")

        restored.sql("INSERT INTO follows VALUES (1, 48, 2.0)")
        before = back.resolve().num_edges
        back.refresh()
        # Change capture does not survive a restart: first refresh is full.
        assert back.last_extraction.mode == "full"
        assert back.resolve().num_edges == before + 1

        restored.sql("INSERT INTO follows VALUES (2, 47, 2.0)")
        back.refresh()  # ...but it reseeded the delta state
        assert back.last_extraction.mode == "incremental"
        assert back.last_extraction.delta_rows == 1

    def test_refresh_ddl_works_post_restore(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        restored.sql("INSERT INTO follows VALUES (3, 46, 1.0)")
        result = restored.sql("REFRESH GRAPH VIEW sv")
        assert result.row_count == restored.graph_view("sv").resolve().num_edges

    def test_restored_view_runs_programs(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        expected = vx.run("sv", PageRank(iterations=4)).values
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        assert restored.run("sv", PageRank(iterations=4)).values == expected

    def test_drop_after_restore_removes_tables(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        vx.checkpoint(checkpoint_dir(tmp_path))
        restored = Vertexica.restore(checkpoint_dir(tmp_path))
        restored.sql("DROP GRAPH VIEW sv")
        assert not restored.db.has_table("sv_edge")
        assert not restored.db.has_table("sv_node")


class TestTornCheckpoints:
    def test_missing_manifest_detected(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        directory = checkpoint_dir(tmp_path)
        vx.checkpoint(directory)
        os.remove(os.path.join(directory, "manifest.json"))
        with pytest.raises(EngineError, match="manifest"):
            Vertexica.restore(directory)

    def test_missing_table_file_detected_with_view_metadata(self, vx, tmp_path):
        vx.create_graph_view("sv", social_view())
        directory = checkpoint_dir(tmp_path)
        vx.checkpoint(directory)
        os.remove(os.path.join(directory, "sv_edge.npz"))
        with pytest.raises(EngineError, match="missing"):
            Vertexica.restore(directory)

    def test_corrupt_view_metadata_fails_loudly(self, vx, tmp_path):
        import json

        vx.create_graph_view("sv", social_view())
        directory = checkpoint_dir(tmp_path)
        vx.checkpoint(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["metadata"]["graph_views"][0]["view"]["edges"][0]["kind"] = "wat"
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(GraphViewError, match="unknown graph-view spec kind"):
            Vertexica.restore(directory)
