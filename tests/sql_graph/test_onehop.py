"""Tests for the 1-hop SQL algorithms against networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.sql_graph import (
    global_clustering_coefficient,
    local_clustering_coefficients,
    per_node_triangle_counts_sql,
    strong_overlap_sql,
    triangle_count_sql,
    weak_ties_sql,
)


@pytest.fixture
def nx_pair(vx, small_graph):
    """(handle, networkx.Graph) over the same edges."""
    handle = vx.load_graph(
        small_graph.name, small_graph.src, small_graph.dst,
        num_vertices=small_graph.num_vertices,
    )
    G = nx.Graph()
    G.add_nodes_from(range(small_graph.num_vertices))
    G.add_edges_from(zip(small_graph.src.tolist(), small_graph.dst.tolist()))
    return handle, G


class TestTriangles:
    def test_total_matches_networkx(self, vx, nx_pair):
        handle, G = nx_pair
        expected = sum(nx.triangles(G).values()) // 3
        assert triangle_count_sql(vx.db, handle) == expected

    def test_per_node_matches_networkx(self, vx, nx_pair):
        handle, G = nx_pair
        got = per_node_triangle_counts_sql(vx.db, handle)
        expected = nx.triangles(G)
        assert got == expected

    def test_explicit_triangle(self, vx):
        g = vx.load_graph("tri", [0, 1, 2, 5], [1, 2, 0, 6])
        assert triangle_count_sql(vx.db, g) == 1
        counts = per_node_triangle_counts_sql(vx.db, g)
        assert counts[0] == counts[1] == counts[2] == 1
        assert counts[5] == counts[6] == 0

    def test_direction_insensitive(self, vx):
        # 0->1, 2->1, 0->2 forms an undirected triangle regardless of arrows
        g = vx.load_graph("tri", [0, 2, 0], [1, 1, 2])
        assert triangle_count_sql(vx.db, g) == 1

    def test_triangle_free_graph(self, vx):
        g = vx.load_graph("path", [0, 1, 2], [1, 2, 3])
        assert triangle_count_sql(vx.db, g) == 0


class TestClustering:
    def test_local_matches_networkx(self, vx, nx_pair):
        handle, G = nx_pair
        got = local_clustering_coefficients(vx.db, handle)
        expected = nx.clustering(G)
        for v in G.nodes:
            assert got[v] == pytest.approx(expected[v])

    def test_global_matches_transitivity(self, vx, nx_pair):
        handle, G = nx_pair
        assert global_clustering_coefficient(vx.db, handle) == pytest.approx(
            nx.transitivity(G)
        )

    def test_empty_graph(self, vx):
        g = vx.load_graph("lonely", [0], [1], num_vertices=5)
        assert global_clustering_coefficient(vx.db, g) == 0.0


class TestStrongOverlap:
    def test_matches_brute_force(self, vx, nx_pair):
        handle, G = nx_pair
        got = {(a, b): c for a, b, c in strong_overlap_sql(vx.db, handle, min_common=3)}
        for (a, b), common in got.items():
            assert a < b
            expected = len(set(G.neighbors(a)) & set(G.neighbors(b)))
            assert common == expected
        # completeness: every qualifying pair is present
        nodes = list(G.nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                overlap = len(set(G.neighbors(a)) & set(G.neighbors(b)))
                if overlap >= 3:
                    assert (min(a, b), max(a, b)) in got

    def test_explicit_shape(self, vx):
        # 0 and 1 share neighbors {2, 3}; symmetrically 2 and 3 share {0, 1}.
        g = vx.load_graph("v", [0, 0, 1, 1], [2, 3, 2, 3])
        pairs = strong_overlap_sql(vx.db, g, min_common=2)
        assert pairs == [(0, 1, 2), (2, 3, 2)]


class TestWeakTies:
    def test_star_center_bridges_all_pairs(self, vx):
        # star: 0 connected to 1..4; 0 bridges C(4,2)=6 disconnected pairs.
        g = vx.load_graph("star", [0, 0, 0, 0], [1, 2, 3, 4])
        ties = weak_ties_sql(vx.db, g)
        assert ties[0] == 6
        assert all(v not in ties for v in (1, 2, 3, 4))

    def test_triangle_has_no_weak_ties(self, vx):
        g = vx.load_graph("tri", [0, 1, 2], [1, 2, 0])
        assert weak_ties_sql(vx.db, g) == {}

    def test_matches_brute_force(self, vx, nx_pair):
        handle, G = nx_pair
        got = weak_ties_sql(vx.db, handle, min_pairs=1)
        for v in G.nodes:
            neighbors = sorted(G.neighbors(v))
            expected = 0
            for i, a in enumerate(neighbors):
                for b in neighbors[i + 1:]:
                    if not G.has_edge(a, b):
                        expected += 1
            if expected:
                assert got[v] == expected
            else:
                assert v not in got

    def test_min_pairs_threshold(self, vx):
        g = vx.load_graph("star", [0, 0, 0], [1, 2, 3])
        assert weak_ties_sql(vx.db, g, min_pairs=4) == {}
        assert weak_ties_sql(vx.db, g, min_pairs=3) == {0: 3}
