"""Tests for SQL PageRank / SSSP / connected components."""

import numpy as np
import pytest

from repro.programs.connected_components import reference_components
from repro.programs.pagerank import reference_pagerank
from repro.programs.shortest_paths import reference_sssp
from repro.sql_graph import (
    connected_components_sql,
    pagerank_sql,
    shortest_paths_sql,
)


class TestPagerankSql:
    def test_matches_oracle(self, vx, small_graph):
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            num_vertices=small_graph.num_vertices,
        )
        got = pagerank_sql(vx.db, g, iterations=6)
        oracle = reference_pagerank(
            small_graph.num_vertices, small_graph.src, small_graph.dst, iterations=6
        )
        for v in range(small_graph.num_vertices):
            assert got[v] == pytest.approx(oracle[v], abs=1e-12)

    def test_custom_damping(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        got = pagerank_sql(vx.db, g, iterations=4, damping=0.5)
        oracle = reference_pagerank(5, np.array(src), np.array(dst), 4, damping=0.5)
        for v in range(5):
            assert got[v] == pytest.approx(oracle[v])

    def test_scratch_tables_cleaned_up(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        before = set(vx.db.table_names())
        pagerank_sql(vx.db, g, iterations=2)
        assert set(vx.db.table_names()) == before

    def test_matches_vertex_centric(self, vx, tiny_edges):
        from repro.programs import PageRank

        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        sql_ranks = pagerank_sql(vx.db, g, iterations=7)
        vertex_ranks = vx.run(g, PageRank(iterations=7)).values
        for v in range(5):
            assert sql_ranks[v] == pytest.approx(vertex_ranks[v], abs=1e-12)


class TestSsspSql:
    def test_matches_dijkstra(self, vx, small_graph):
        weights = (np.arange(small_graph.num_edges) % 5 + 1).astype(float)
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            weights=weights, num_vertices=small_graph.num_vertices,
        )
        got = shortest_paths_sql(vx.db, g, 0)
        oracle = reference_sssp(
            small_graph.num_vertices, small_graph.src, small_graph.dst, weights, 0
        )
        for v in range(small_graph.num_vertices):
            if np.isinf(oracle[v]):
                assert np.isinf(got[v])
            else:
                assert got[v] == pytest.approx(oracle[v])

    def test_unreachable_is_inf(self, vx):
        g = vx.load_graph("g", [0], [1], num_vertices=3)
        got = shortest_paths_sql(vx.db, g, 0)
        assert np.isinf(got[2])

    def test_early_termination(self, vx):
        """The Bellman-Ford loop stops once a round improves nothing."""
        g = vx.load_graph("chain", [0, 1], [1, 2], num_vertices=3)
        statements_before = vx.db.statements_executed
        shortest_paths_sql(vx.db, g, 0)
        # far fewer statements than |V|-1 full rounds would need
        assert vx.db.statements_executed - statements_before < 40

    def test_scratch_cleanup(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        before = set(vx.db.table_names())
        shortest_paths_sql(vx.db, g, 0)
        assert set(vx.db.table_names()) == before


class TestComponentsSql:
    def test_matches_union_find(self, vx, small_graph):
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            num_vertices=small_graph.num_vertices, symmetrize=True,
        )
        got = connected_components_sql(vx.db, g)
        oracle = reference_components(
            small_graph.num_vertices, small_graph.src, small_graph.dst
        )
        for v in range(small_graph.num_vertices):
            assert got[v] == oracle[v]

    def test_isolated_vertices_own_component(self, vx):
        g = vx.load_graph("g", [0], [1], num_vertices=4, symmetrize=True)
        got = connected_components_sql(vx.db, g)
        assert got[2] == 2 and got[3] == 3


class TestScratchTableIsolation:
    """scratch_tables must mint per-invocation unique names so algorithms
    sharing one Database can never drop each other's scratch state."""

    def test_unique_names_per_entry(self, vx):
        from repro.sql_graph._util import scratch_tables

        with scratch_tables(vx.db, "g_pr_rank", "g_pr_contrib") as first:
            with scratch_tables(vx.db, "g_pr_rank", "g_pr_contrib") as second:
                assert set(first).isdisjoint(second)
                assert all(name.startswith("g_pr_") for name in first + second)

    def test_interleaved_algorithms_do_not_collide(self, vx, tiny_edges):
        from repro.sql_graph._util import scratch_tables

        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        before = set(vx.db.table_names())
        # Simulate a second concurrent pagerank holding scratch tables under
        # the same base names while the real one runs to completion.
        with scratch_tables(
            vx.db, "g_pr_rank", "g_pr_contrib", "g_pr_outdeg", "g_pr_next"
        ) as (rank, _, _, _):
            vx.db.execute(f"CREATE TABLE {rank} (id INTEGER, rank FLOAT)")
            vx.db.execute(f"INSERT INTO {rank} VALUES (0, 0.5)")
            got = pagerank_sql(vx.db, g, iterations=3)
            # The held scratch table survived the full inner run.
            assert vx.db.execute(f"SELECT COUNT(*) FROM {rank}").scalar() == 1
        oracle = reference_pagerank(5, np.array(src), np.array(dst), 3)
        for v in range(5):
            assert got[v] == pytest.approx(oracle[v])
        assert set(vx.db.table_names()) == before

    def test_cleanup_on_error(self, vx):
        from repro.sql_graph._util import scratch_tables

        before = set(vx.db.table_names())
        with pytest.raises(RuntimeError):
            with scratch_tables(vx.db, "boom_scratch") as (name,):
                vx.db.execute(f"CREATE TABLE {name} (id INTEGER)")
                raise RuntimeError("algorithm failed")
        assert set(vx.db.table_names()) == before
