"""End-to-end integration: the full §3/§4 story on one database.

One scenario exercising everything together: load a graph with metadata,
run vertex-centric and SQL algorithms, verify cross-engine agreement,
mutate the graph, re-analyze, checkpoint, and recover.
"""

import numpy as np
import pytest

from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.core import Vertexica
from repro.datasets import MetadataSpec, attach_metadata, power_law_graph
from repro.engine import Database
from repro.programs import ConnectedComponents, PageRank, ShortestPaths
from repro.sql_graph import pagerank_sql, triangle_count_sql, weak_ties_sql
from repro.temporal import GraphMutator


@pytest.fixture(scope="module")
def world():
    """A shared database with a loaded, metadata-rich graph."""
    vx = Vertexica()
    graph = power_law_graph("world", 80, 500, seed=23)
    handle = vx.load_graph(
        graph.name, graph.src, graph.dst, num_vertices=graph.num_vertices
    )
    node_attrs, edge_attrs = attach_metadata(
        vx.db, handle, MetadataSpec(uniform_ints=2, zipf_ints=1, floats=1, strings=1),
        seed=3,
    )
    return vx, graph, handle, node_attrs, edge_attrs


class TestEndToEnd:
    def test_vertex_centric_equals_sql_equals_giraph(self, world):
        vx, graph, handle, _, _ = world
        vertex_ranks = vx.run(handle, PageRank(iterations=6)).values
        sql_ranks = pagerank_sql(vx.db, handle, iterations=6)
        giraph = GiraphEngine(
            graph.num_vertices, graph.src, graph.dst,
            config=GiraphConfig(barrier_latency_s=0.0),
        ).run(PageRank(iterations=6)).values
        for v in range(graph.num_vertices):
            assert vertex_ranks[v] == pytest.approx(sql_ranks[v], abs=1e-10)
            assert vertex_ranks[v] == pytest.approx(giraph[v], abs=1e-10)

    def test_metadata_filtered_subgraph_analysis(self, world):
        """§3.4: relational selection on metadata feeding a graph algorithm."""
        vx, graph, handle, _, edge_attrs = world
        family_edges = vx.sql(
            f"SELECT src, dst FROM {edge_attrs} WHERE etype = 'family'"
        ).rows()
        assert family_edges
        sub = vx.load_graph(
            "family", [r[0] for r in family_edges], [r[1] for r in family_edges]
        )
        ranks = pagerank_sql(vx.db, sub, iterations=5)
        assert abs(sum(ranks.values())) <= 1.0 + 1e-9

    def test_graph_output_joined_with_metadata(self, world):
        """Post-process PageRank output against node attributes in SQL."""
        vx, graph, handle, node_attrs, _ = world
        vx.run(handle, PageRank(iterations=5))
        rows = vx.sql(
            f"SELECT a.u0, AVG(v.value) AS avg_rank "
            f"FROM world_vertex v JOIN {node_attrs} a ON v.id = a.id "
            f"GROUP BY a.u0 ORDER BY a.u0"
        ).rows()
        assert len(rows) >= 1
        total = vx.sql("SELECT SUM(value) FROM world_vertex").scalar()
        assert total <= 1.0 + 1e-9

    def test_mutation_then_reanalysis(self, world):
        vx, graph, handle, _, _ = world
        mutator = GraphMutator(vx.db, handle)
        triangles_before = triangle_count_sql(vx.db, handle)
        # close a wedge deterministically: find a bridging vertex
        ties = weak_ties_sql(vx.db, handle, min_pairs=1)
        assert ties
        mutated = False
        for v in sorted(ties):
            neighbors = [
                r[0] for r in vx.sql(
                    f"SELECT DISTINCT dst FROM {handle.edge_table} WHERE src = ?",
                    params=(v,),
                ).rows()
            ]
            for i, a in enumerate(neighbors):
                for b in neighbors[i + 1:]:
                    existing = vx.sql(
                        f"SELECT COUNT(*) FROM {handle.edge_table} "
                        f"WHERE (src = ? AND dst = ?) OR (src = ? AND dst = ?)",
                        params=(a, b, b, a),
                    ).scalar()
                    if not existing:
                        mutator.add_edge(a, b)
                        mutated = True
                        break
                if mutated:
                    break
            if mutated:
                break
        assert mutated
        assert triangle_count_sql(vx.db, handle) > triangles_before

    def test_checkpoint_and_recovery_mid_scenario(self, world, tmp_path):
        vx, graph, handle, _, _ = world
        vx.run(handle, ConnectedComponents())
        directory = str(tmp_path / "ckpt")
        vx.db.checkpoint(directory)
        restored = Database.restore(directory)
        original = vx.sql("SELECT id, value FROM world_vertex ORDER BY id").rows()
        recovered = restored.execute(
            "SELECT id, value FROM world_vertex ORDER BY id"
        ).rows()
        assert original == recovered

    def test_sssp_then_relational_report(self, world):
        vx, graph, handle, _, _ = world
        source = int(np.argmax(graph.degree_sequence()))
        vx.run(handle, ShortestPaths(source=source))
        # §4.2: "top shortest paths" console report straight from SQL
        rows = vx.sql(
            "SELECT id, value FROM world_vertex "
            "WHERE value IS NOT NULL AND id <> ? "
            "ORDER BY value ASC, id LIMIT 5",
            params=(source,),
        ).rows()
        assert len(rows) == 5
        distances = [r[1] for r in rows]
        assert distances == sorted(distances)
