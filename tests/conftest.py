"""Shared fixtures for the whole suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.graphdb import PropertyGraphStore, StoreConfig
from repro.core import Vertexica, VertexicaConfig
from repro.datasets.generators import power_law_graph
from repro.engine import Database


@pytest.fixture
def db() -> Database:
    """A fresh engine database."""
    return Database()


@pytest.fixture
def vx() -> Vertexica:
    """A fresh Vertexica instance (own database, default config)."""
    return Vertexica()


@pytest.fixture
def tiny_edges() -> tuple[list[int], list[int]]:
    """A 5-vertex directed graph used across algorithm tests.

    Edges: 0->1, 0->2, 1->2, 2->0, 2->3, 3->4, 4->0 (one cycle plus a
    tail that cycles back) — every vertex reachable from 0.
    """
    return [0, 0, 1, 2, 2, 3, 4], [1, 2, 2, 0, 3, 4, 0]


@pytest.fixture
def small_graph():
    """A seeded 60-vertex power-law graph (300 edges)."""
    return power_law_graph("small", 60, 300, seed=17)


@pytest.fixture
def fast_store(tmp_path) -> PropertyGraphStore:
    """A property-graph store with simulation latency disabled and its
    WAL in the test's temp directory."""
    store = PropertyGraphStore(
        StoreConfig(wal_path=str(tmp_path / "wal.jsonl"), access_latency_s=0.0)
    )
    yield store
    store.close()


@pytest.fixture
def sample_table(db: Database) -> Database:
    """A database pre-loaded with a small people table."""
    db.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name VARCHAR, "
        "age INTEGER, score FLOAT)"
    )
    db.execute(
        "INSERT INTO people VALUES "
        "(1, 'alice', 34, 9.5), (2, 'bob', 28, 7.25), (3, 'carol', 41, NULL), "
        "(4, 'dave', NULL, 3.5), (5, 'erin', 28, 8.0)"
    )
    return db
