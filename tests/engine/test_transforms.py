"""Tests for transform (table) UDFs and stored procedures — the machinery
the Vertexica workers and coordinator are built on."""

import threading

import pytest

from repro.engine import Database
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.parallel import make_thread_executor, serial_executor
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import INTEGER
from repro.errors import UdfError


OUT_SCHEMA = Schema([ColumnDef("key", INTEGER), ColumnDef("total", INTEGER)])


def summing_transform(partition: RecordBatch, index: int) -> RecordBatch:
    """Sum the 'v' column per partition, tagged by first key seen."""
    keys = partition.column("k").to_list()
    values = partition.column("v").to_list()
    return RecordBatch(
        OUT_SCHEMA,
        [
            Column.from_values(INTEGER, [keys[0]]),
            Column.from_values(INTEGER, [sum(values)]),
        ],
    )


@pytest.fixture
def loaded(db: Database) -> Database:
    db.execute("CREATE TABLE data (k INTEGER, v INTEGER)")
    db.execute(
        "INSERT INTO data VALUES (0, 1), (0, 2), (1, 10), (1, 20), (2, 100)"
    )
    db.register_transform("summer", summing_transform, OUT_SCHEMA)
    return db


class TestTransforms:
    def test_single_partition(self, loaded):
        out = loaded.run_transform("summer", "SELECT k, v FROM data")
        assert out.num_rows == 1
        assert out.column("total").to_list() == [133]

    def test_partitioned_by_key(self, loaded):
        out = loaded.run_transform(
            "summer", "SELECT k, v FROM data",
            partition_by=("k",), n_partitions=3,
        )
        got = dict(zip(out.column("key").to_list(), out.column("total").to_list()))
        assert got == {0: 3, 1: 30, 2: 100}

    def test_partition_sorting(self, db):
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        db.execute("INSERT INTO t VALUES (0, 3), (0, 1), (0, 2)")
        seen = []

        def record_order(partition: RecordBatch, index: int) -> RecordBatch:
            seen.extend(partition.column("v").to_list())
            return RecordBatch.empty(OUT_SCHEMA)

        db.register_transform("rec", record_order, OUT_SCHEMA)
        db.run_transform("rec", "SELECT k, v FROM t", order_by=("v",))
        assert seen == [1, 2, 3]

    def test_empty_partitions_skipped(self, loaded):
        calls = []

        def counting(partition: RecordBatch, index: int) -> RecordBatch:
            calls.append(index)
            return RecordBatch.empty(OUT_SCHEMA)

        loaded.register_transform("counting", counting, OUT_SCHEMA)
        loaded.run_transform(
            "counting", "SELECT k, v FROM data", partition_by=("k",), n_partitions=16
        )
        assert len(calls) == 3  # only the 3 non-empty buckets

    def test_empty_input(self, loaded):
        out = loaded.run_transform("summer", "SELECT k, v FROM data WHERE k > 99")
        assert out.num_rows == 0

    def test_unknown_transform(self, db):
        with pytest.raises(UdfError, match="unknown transform"):
            db.run_transform("ghost", "SELECT 1")

    def test_thread_executor_matches_serial(self, loaded):
        serial = loaded.run_transform(
            "summer", "SELECT k, v FROM data",
            partition_by=("k",), n_partitions=3, executor=serial_executor,
        )
        with make_thread_executor(4) as executor:
            threaded = loaded.run_transform(
                "summer", "SELECT k, v FROM data",
                partition_by=("k",), n_partitions=3,
                executor=executor,
            )
        as_set = lambda b: set(zip(b.column("key").to_list(), b.column("total").to_list()))
        assert as_set(serial) == as_set(threaded)

    def test_thread_executor_actually_uses_threads(self, loaded):
        thread_names = set()

        def spy(partition: RecordBatch, index: int) -> RecordBatch:
            thread_names.add(threading.current_thread().name)
            return RecordBatch.empty(OUT_SCHEMA)

        loaded.register_transform("spy", spy, OUT_SCHEMA)
        with make_thread_executor(3) as executor:
            loaded.run_transform(
                "spy", "SELECT k, v FROM data",
                partition_by=("k",), n_partitions=3,
                executor=executor,
            )
        assert any("ThreadPool" in name for name in thread_names)


class TestStoredProcedures:
    def test_procedure_receives_db_and_args(self, db):
        def proc(database: Database, n: int) -> int:
            database.execute("CREATE TABLE IF NOT EXISTS log (x INTEGER)")
            database.execute("INSERT INTO log VALUES (?)", params=(n,))
            return database.execute("SELECT COUNT(*) FROM log").scalar()

        db.register_procedure("append_log", proc)
        assert db.call("append_log", 1) == 1
        assert db.call("append_log", 2) == 2

    def test_unknown_procedure(self, db):
        with pytest.raises(UdfError, match="unknown stored procedure"):
            db.call("ghost")

    def test_procedure_can_run_transforms(self, loaded):
        def proc(database: Database) -> int:
            out = database.run_transform("summer", "SELECT k, v FROM data")
            return out.column("total").to_list()[0]

        loaded.register_procedure("run_summer", proc)
        assert loaded.call("run_summer") == 133
