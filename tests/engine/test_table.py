"""Tests for stored tables: constraints, mutations, versioning."""

import numpy as np
import pytest

from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Table
from repro.engine.types import FLOAT, INTEGER, VARCHAR
from repro.errors import ConstraintError, TypeMismatchError


def make_table(**kwargs) -> Table:
    schema = Schema(
        [
            ColumnDef("id", INTEGER, nullable=False),
            ColumnDef("v", FLOAT),
        ]
    )
    return Table("t", schema, **kwargs)


class TestConstraints:
    def test_not_null_enforced_on_insert(self):
        table = make_table()
        with pytest.raises(ConstraintError, match="NOT NULL"):
            table.insert_rows([(None, 1.0)])

    def test_primary_key_uniqueness(self):
        table = make_table(primary_key="id")
        table.insert_rows([(1, 1.0), (2, 2.0)])
        with pytest.raises(ConstraintError, match="duplicate"):
            table.insert_rows([(2, 9.0)])

    def test_primary_key_must_exist(self):
        schema = Schema([ColumnDef("id", INTEGER)])
        with pytest.raises(ConstraintError):
            Table("t", schema, primary_key="nope")


class TestMutations:
    def test_insert_bumps_version(self):
        table = make_table()
        v0 = table.version
        table.insert_rows([(1, 1.0)])
        assert table.version == v0 + 1
        assert table.num_rows == 1

    def test_delete_rows(self):
        table = make_table()
        table.insert_rows([(1, 1.0), (2, 2.0), (3, 3.0)])
        deleted = table.delete_rows(np.array([True, False, True]))
        assert deleted == 2
        assert [r[0] for r in table.data().to_rows()] == [2]

    def test_delete_nothing_does_not_bump_version(self):
        table = make_table()
        table.insert_rows([(1, 1.0)])
        version = table.version
        assert table.delete_rows(np.array([False])) == 0
        assert table.version == version

    def test_update_rows_masked(self):
        table = make_table()
        table.insert_rows([(1, 1.0), (2, 2.0)])
        touched = table.update_rows(
            np.array([False, True]),
            {"v": lambda batch: Column.constant(FLOAT, 99.0, batch.num_rows)},
        )
        assert touched == 1
        assert table.data().column("v").to_list() == [1.0, 99.0]

    def test_update_type_mismatch(self):
        table = make_table()
        table.insert_rows([(1, 1.0)])
        with pytest.raises(TypeMismatchError):
            table.update_rows(
                np.array([True]),
                {"v": lambda batch: Column.constant(VARCHAR, "x", batch.num_rows)},
            )

    def test_replace_data_swaps_batch(self):
        table = make_table()
        table.insert_rows([(1, 1.0)])
        fresh = RecordBatch.from_rows(table.schema, [(7, 7.0), (8, 8.0)])
        table.replace_data(fresh)
        assert table.num_rows == 2

    def test_replace_checks_constraints(self):
        table = make_table(primary_key="id")
        table.insert_rows([(1, 1.0)])
        bad = RecordBatch.from_rows(table.schema, [(5, 1.0), (5, 2.0)])
        with pytest.raises(ConstraintError):
            table.replace_data(bad)

    def test_truncate(self):
        table = make_table()
        table.insert_rows([(1, 1.0)])
        table.truncate()
        assert table.num_rows == 0

    def test_restore_resets_version(self):
        table = make_table()
        table.insert_rows([(1, 1.0)])
        snapshot = table.snapshot()
        version = table.version
        table.insert_rows([(2, 2.0)])
        table.restore(snapshot, version)
        assert table.num_rows == 1
        assert table.version == version
