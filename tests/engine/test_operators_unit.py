"""Direct unit tests for physical operators (bypassing SQL)."""

import numpy as np
import pytest

from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.expressions import BinaryOp, ColumnRef, Literal
from repro.engine.functions import FunctionRegistry
from repro.engine.operators import (
    AggregateOp,
    AggregateSpec,
    AliasOp,
    BatchSourceOp,
    CrossJoinOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    LimitOp,
    Operator,
    ProjectOp,
    SortOp,
    UnionAllOp,
    explain_tree,
    factorize_columns,
)
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import FLOAT, INTEGER, VARCHAR
from repro.errors import PlanError, TypeMismatchError


REGISTRY = FunctionRegistry()


def source(rows, names=("k", "v"), dtypes=(INTEGER, INTEGER), qualifier=None):
    schema = Schema(
        ColumnDef(n, t, qualifier=qualifier) for n, t in zip(names, dtypes)
    )
    return BatchSourceOp(RecordBatch.from_rows(schema.unqualified(), rows), qualifier)


class TestFilterProject:
    def test_filter_keeps_only_true(self):
        op = FilterOp(
            source([(1, 10), (2, None), (3, 30)]),
            BinaryOp(">", ColumnRef("v"), Literal(5)),
            REGISTRY,
        )
        # NULL comparison row is dropped, not kept.
        assert [r[0] for r in op.execute().to_rows()] == [1, 3]

    def test_project_computes_expressions(self):
        op = ProjectOp(
            source([(1, 10), (2, 20)]),
            [BinaryOp("*", ColumnRef("v"), Literal(2))],
            ["doubled"],
            REGISTRY,
        )
        assert op.execute().to_pydict() == {"doubled": [20, 40]}

    def test_alias_requalifies(self):
        op = AliasOp(source([(1, 2)]), "t")
        assert op.schema.column("k", "t").qualifier == "t"


class TestHashJoinUnit:
    def make_join(self, kind, left_rows, right_rows, residual=None):
        left = source(left_rows, qualifier="l")
        right = source(right_rows, names=("k", "w"), qualifier="r")
        return HashJoinOp(
            left, right,
            [ColumnRef("k", "l")], [ColumnRef("k", "r")],
            kind, residual, REGISTRY,
        )

    def test_inner_duplicates_multiply(self):
        op = self.make_join("inner", [(1, 0), (1, 1)], [(1, 10), (1, 20)])
        assert op.execute().num_rows == 4

    def test_left_pads_unmatched(self):
        op = self.make_join("left", [(1, 0), (2, 0)], [(1, 10)])
        rows = sorted(op.execute().to_rows())
        assert rows == [(1, 0, 1, 10), (2, 0, None, None)]

    def test_left_with_residual_keeps_row_when_all_matches_fail(self):
        residual = BinaryOp(">", ColumnRef("w", "r"), Literal(99))
        op = self.make_join("left", [(1, 0)], [(1, 10)], residual)
        assert op.execute().to_rows() == [(1, 0, None, None)]

    def test_requires_keys(self):
        with pytest.raises(PlanError):
            HashJoinOp(source([]), source([]), [], [], "inner", None, REGISTRY)

    def test_rejects_unknown_kind(self):
        with pytest.raises(PlanError):
            self_join = source([(1, 1)])
            HashJoinOp(
                self_join, source([(1, 1)]),
                [ColumnRef("k")], [ColumnRef("k")],
                "full", None, REGISTRY,
            )

    def test_key_type_mismatch_rejected(self):
        left = source([(1, 1)], dtypes=(INTEGER, INTEGER), qualifier="l")
        right = source([("a", "b")], dtypes=(VARCHAR, VARCHAR), qualifier="r")
        with pytest.raises(TypeMismatchError):
            HashJoinOp(
                left, right, [ColumnRef("k", "l")], [ColumnRef("k", "r")],
                "inner", None, REGISTRY,
            )

    def test_mixed_numeric_keys_join(self):
        left = source([(1, 0)], dtypes=(INTEGER, INTEGER), qualifier="l")
        right = source([(1.0, 9.0)], names=("k", "w"), dtypes=(FLOAT, FLOAT), qualifier="r")
        op = HashJoinOp(
            left, right, [ColumnRef("k", "l")], [ColumnRef("k", "r")],
            "inner", None, REGISTRY,
        )
        assert op.execute().num_rows == 1


class TestAggregateUnit:
    def test_spec_combo(self):
        op = AggregateOp(
            source([(1, 10), (1, 30), (2, 5)]),
            [ColumnRef("k")],
            [
                AggregateSpec("COUNT", None),
                AggregateSpec("SUM", ColumnRef("v")),
                AggregateSpec("AVG", ColumnRef("v")),
                AggregateSpec("MIN", ColumnRef("v")),
                AggregateSpec("MAX", ColumnRef("v")),
            ],
            ["k", "n", "total", "mean", "lo", "hi"],
            REGISTRY,
        )
        rows = {r[0]: r[1:] for r in op.execute().to_rows()}
        assert rows[1] == (2, 40, 20.0, 10, 30)
        assert rows[2] == (1, 5, 5.0, 5, 5)

    def test_min_max_varchar(self):
        op = AggregateOp(
            source([(1, "pear"), (1, "apple")], dtypes=(INTEGER, VARCHAR)),
            [ColumnRef("k")],
            [AggregateSpec("MIN", ColumnRef("v")), AggregateSpec("MAX", ColumnRef("v"))],
            ["k", "lo", "hi"],
            REGISTRY,
        )
        assert op.execute().to_rows() == [(1, "apple", "pear")]

    def test_empty_input_with_groups_is_empty(self):
        op = AggregateOp(
            source([]),
            [ColumnRef("k")],
            [AggregateSpec("COUNT", None)],
            ["k", "n"],
            REGISTRY,
        )
        assert op.execute().num_rows == 0

    def test_stddev_single_value_is_null(self):
        op = AggregateOp(
            source([(1, 5)]),
            [ColumnRef("k")],
            [AggregateSpec("STDDEV", ColumnRef("v"))],
            ["k", "sd"],
            REGISTRY,
        )
        assert op.execute().to_rows() == [(1, None)]


class TestSortLimitDistinctUnit:
    def test_sort_desc_nulls_first(self):
        op = SortOp(
            source([(1, 10), (2, None), (3, 5)]),
            [ColumnRef("v")],
            [False],
            REGISTRY,
        )
        assert [r[0] for r in op.execute().to_rows()] == [2, 1, 3]

    def test_limit_beyond_rows(self):
        op = LimitOp(source([(1, 1)]), 100, 0)
        assert op.execute().num_rows == 1

    def test_offset_beyond_rows(self):
        op = LimitOp(source([(1, 1)]), None, 5)
        assert op.execute().num_rows == 0

    def test_distinct_with_nulls(self):
        op = DistinctOp(source([(1, None), (1, None), (2, 5)]))
        assert op.execute().num_rows == 2

    def test_cross_join_empty_side(self):
        op = CrossJoinOp(
            source([(1, 1)], qualifier="a"), source([], qualifier="b")
        )
        assert op.execute().num_rows == 0

    def test_union_all_three_inputs(self):
        op = UnionAllOp([source([(1, 1)]), source([(2, 2)]), source([(3, 3)])])
        assert op.execute().num_rows == 3


class TestFactorizeEdgeCases:
    def test_requires_columns(self):
        with pytest.raises(Exception):
            factorize_columns([])

    def test_all_null_column(self):
        col = Column.from_values(INTEGER, [None, None, None])
        codes, n_groups = factorize_columns([col])
        assert n_groups == 1
        assert set(codes.tolist()) == {0}

    def test_many_columns_no_overflow(self):
        cols = [
            Column.from_values(INTEGER, list(range(50))) for _ in range(8)
        ]
        codes, n_groups = factorize_columns(cols)
        assert n_groups == 50


class TestExplainTree:
    def test_indentation(self):
        op = LimitOp(FilterOp(
            source([(1, 2)]),
            BinaryOp("=", ColumnRef("k"), Literal(1)),
            REGISTRY,
        ), 1, 0)
        text = explain_tree(op)
        lines = text.splitlines()
        assert lines[0].startswith("Limit")
        assert lines[1].startswith("  Filter")
        assert lines[2].startswith("    BatchSource")
