"""Tests for the SQL tokenizer."""

import pytest

from repro.engine.sql.lexer import Token, TokenKind, tokenize
from repro.errors import SqlSyntaxError


def kinds(sql: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(sql)]


def texts(sql: str) -> list[str]:
    return [t.text for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_uppercased(self):
        assert texts("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        assert texts("Vertex EDGE_TABLE") == ["vertex", "edge_table"]

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"MiXeD"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "MiXeD"

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("select")[-1].kind is TokenKind.EOF


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INTEGER and token.text == "42"

    def test_float_forms(self):
        for text in ("4.25", ".5", "1e3", "1.5E-2", "2e+10"):
            token = tokenize(text)[0]
            assert token.kind is TokenKind.FLOAT, text

    def test_integer_then_dot_identifier(self):
        # "1e" with no exponent digits must not absorb the e.
        tokens = tokenize("1ex")
        assert tokens[0].kind is TokenKind.INTEGER
        assert tokens[1].kind is TokenKind.IDENT


class TestStrings:
    def test_simple(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING and token.text == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""

    def test_unterminated_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("'oops")


class TestOperators:
    def test_multichar(self):
        assert texts("<> <= >= ||") == ["<>", "<=", ">=", "||"]

    def test_bang_equals_normalized(self):
        assert texts("a != b") == ["a", "<>", "b"]

    def test_param(self):
        assert tokenize("?")[0].kind is TokenKind.PARAM

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("select @")


class TestComments:
    def test_line_comment(self):
        assert texts("select -- comment\n 1") == ["SELECT", "1"]

    def test_block_comment(self):
        assert texts("select /* multi\nline */ 1") == ["SELECT", "1"]

    def test_unterminated_block(self):
        with pytest.raises(SqlSyntaxError, match="unterminated block"):
            tokenize("/* never ends")

    def test_line_numbers_tracked(self):
        tokens = tokenize("select\n\nx")
        ident = [t for t in tokens if t.kind is TokenKind.IDENT][0]
        assert ident.line == 3


class TestTokenMatches:
    def test_matches(self):
        token = Token(TokenKind.KEYWORD, "SELECT", 0, 1)
        assert token.matches(TokenKind.KEYWORD)
        assert token.matches(TokenKind.KEYWORD, "SELECT")
        assert not token.matches(TokenKind.KEYWORD, "FROM")
        assert not token.matches(TokenKind.IDENT)
