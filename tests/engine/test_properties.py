"""Property-based tests (hypothesis) for core engine invariants.

Strategy: generate random data, run it through the engine, and compare
against straightforward Python oracles — the SQL engine must agree with
plain ``sorted()``, ``sum()``, dict-based grouping, and set algebra on
every input hypothesis can dream up.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.column import Column, concat_columns
from repro.engine.operators import factorize_columns
from repro.engine.types import FLOAT, INTEGER, VARCHAR

# Reasonable defaults: keep each property fast so the suite stays snappy.
settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")

int_or_none = st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000))
small_text = st.text(alphabet="abcxyz", max_size=4)


def fresh_db_with(values: list[int | None]) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (x INTEGER)")
    if values:
        placeholders = ", ".join(["(?)"] * len(values))
        db.execute(f"INSERT INTO t VALUES {placeholders}", params=tuple(values))
    return db


class TestColumnProperties:
    @given(st.lists(int_or_none, max_size=50))
    def test_roundtrip(self, values):
        assert Column.from_values(INTEGER, values).to_list() == values

    @given(st.lists(int_or_none, max_size=30), st.lists(int_or_none, max_size=30))
    def test_concat_is_list_concat(self, a, b):
        col = concat_columns(
            [Column.from_values(INTEGER, a), Column.from_values(INTEGER, b)]
        )
        assert col.to_list() == a + b

    @given(st.lists(int_or_none, min_size=1, max_size=50), st.data())
    def test_take_matches_indexing(self, values, data):
        col = Column.from_values(INTEGER, values)
        indices = data.draw(
            st.lists(st.integers(0, len(values) - 1), max_size=30)
        )
        taken = col.take(np.array(indices, dtype=np.int64))
        assert taken.to_list() == [values[i] for i in indices]

    @given(st.lists(st.booleans(), max_size=50))
    def test_filter_matches_compress(self, mask):
        values = list(range(len(mask)))
        col = Column.from_values(INTEGER, values)
        kept = col.filter(np.array(mask, dtype=bool))
        assert kept.to_list() == [v for v, keep in zip(values, mask) if keep]


class TestFactorize:
    @given(st.lists(int_or_none, min_size=1, max_size=60))
    def test_codes_group_equal_values(self, values):
        col = Column.from_values(INTEGER, values)
        codes, n_groups = factorize_columns([col])
        assert len(codes) == len(values)
        assert codes.min() >= 0 and codes.max() < n_groups
        # same value (NULLs equal) <=> same code
        by_value: dict[object, int] = {}
        for value, code in zip(values, codes):
            key = ("null",) if value is None else value
            if key in by_value:
                assert by_value[key] == code
            else:
                by_value[key] = code
        assert len(by_value) == n_groups

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.sampled_from(["a", "b", "c"])),
            min_size=1,
            max_size=50,
        )
    )
    def test_multi_column_codes_match_tuple_identity(self, pairs):
        col_a = Column.from_values(INTEGER, [p[0] for p in pairs])
        col_b = Column.from_values(VARCHAR, [p[1] for p in pairs])
        codes, n_groups = factorize_columns([col_a, col_b])
        mapping: dict[tuple, int] = {}
        for pair, code in zip(pairs, codes):
            assert mapping.setdefault(pair, code) == code
        assert len(mapping) == n_groups


class TestSqlAgainstPythonOracles:
    @given(st.lists(int_or_none, max_size=40))
    def test_aggregates(self, values):
        db = fresh_db_with(values)
        row = db.execute("SELECT COUNT(*), COUNT(x), SUM(x), MIN(x), MAX(x) FROM t").rows()[0]
        non_null = [v for v in values if v is not None]
        assert row[0] == len(values)
        assert row[1] == len(non_null)
        assert row[2] == (sum(non_null) if non_null else None)
        assert row[3] == (min(non_null) if non_null else None)
        assert row[4] == (max(non_null) if non_null else None)

    @given(st.lists(st.integers(-50, 50), max_size=40))
    def test_order_by_matches_sorted(self, values):
        db = fresh_db_with(values)
        rows = db.execute("SELECT x FROM t ORDER BY x").rows()
        assert [r[0] for r in rows] == sorted(values)
        rows = db.execute("SELECT x FROM t ORDER BY x DESC").rows()
        assert [r[0] for r in rows] == sorted(values, reverse=True)

    @given(st.lists(st.integers(-20, 20), max_size=40))
    def test_distinct_matches_set(self, values):
        db = fresh_db_with(values)
        rows = db.execute("SELECT DISTINCT x FROM t").rows()
        assert sorted(r[0] for r in rows) == sorted(set(values))

    @given(st.lists(st.integers(-20, 20), max_size=40), st.integers(-20, 20))
    def test_where_matches_comprehension(self, values, pivot):
        db = fresh_db_with(values)
        count = db.execute("SELECT COUNT(*) FROM t WHERE x > ?", params=(pivot,)).scalar()
        assert count == len([v for v in values if v > pivot])

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)), max_size=40)
    )
    def test_group_by_matches_dict(self, pairs):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        for k, v in pairs:
            db.execute("INSERT INTO t VALUES (?, ?)", params=(k, v))
        rows = db.execute("SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k").rows()
        oracle: dict[int, list[int]] = {}
        for k, v in pairs:
            oracle.setdefault(k, []).append(v)
        assert len(rows) == len(oracle)
        for k, total, count in rows:
            assert total == sum(oracle[k])
            assert count == len(oracle[k])

    @given(
        st.lists(st.integers(0, 8), max_size=25),
        st.lists(st.integers(0, 8), max_size=25),
    )
    def test_join_matches_nested_loop(self, left, right):
        db = Database()
        db.execute("CREATE TABLE l (x INTEGER)")
        db.execute("CREATE TABLE r (y INTEGER)")
        for v in left:
            db.execute("INSERT INTO l VALUES (?)", params=(v,))
        for v in right:
            db.execute("INSERT INTO r VALUES (?)", params=(v,))
        got = db.execute(
            "SELECT l.x, r.y FROM l JOIN r ON l.x = r.y ORDER BY 1, 2"
        ).rows()
        oracle = sorted((a, b) for a in left for b in right if a == b)
        assert got == oracle

    @given(
        st.lists(st.integers(0, 8), max_size=20),
        st.lists(st.integers(0, 8), max_size=20),
    )
    def test_left_join_covers_all_left_rows(self, left, right):
        db = Database()
        db.execute("CREATE TABLE l (x INTEGER)")
        db.execute("CREATE TABLE r (y INTEGER)")
        for v in left:
            db.execute("INSERT INTO l VALUES (?)", params=(v,))
        for v in right:
            db.execute("INSERT INTO r VALUES (?)", params=(v,))
        rows = db.execute("SELECT l.x, r.y FROM l LEFT JOIN r ON l.x = r.y").rows()
        right_set = set(right)
        expected = sum(
            max(right.count(v), 1) if v in right_set else 1 for v in left
        )
        assert len(rows) == expected
        # unmatched rows padded with NULL
        for x, y in rows:
            assert y is None or y == x

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30))
    def test_avg_matches_mean(self, values):
        db = Database()
        db.execute("CREATE TABLE t (x FLOAT)")
        for v in values:
            db.execute("INSERT INTO t VALUES (?)", params=(v,))
        avg = db.execute("SELECT AVG(x) FROM t").scalar()
        assert avg == pytest.approx(sum(values) / len(values), abs=1e-9)

    @given(st.lists(st.integers(-1000, 1000), max_size=30))
    def test_union_all_is_multiset_sum(self, values):
        db = fresh_db_with(values)
        total = db.execute(
            "SELECT COUNT(*) FROM (SELECT x FROM t UNION ALL SELECT x FROM t) u"
        ).scalar()
        assert total == 2 * len(values)
