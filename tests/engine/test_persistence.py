"""Tests for checkpoint / recovery."""

import json
import os

import pytest

from repro.engine import Database
from repro.errors import EngineError


class TestCheckpointRoundtrip:
    def test_roundtrip_preserves_data(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        restored = Database.restore(directory)
        assert restored.execute("SELECT COUNT(*) FROM people").scalar() == 5
        original = sample_table.execute("SELECT * FROM people ORDER BY id").rows()
        recovered = restored.execute("SELECT * FROM people ORDER BY id").rows()
        assert original == recovered

    def test_roundtrip_preserves_nulls_and_types(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        restored = Database.restore(directory)
        row = restored.execute("SELECT * FROM people WHERE id = 4").rows()[0]
        assert row == (4, "dave", None, 3.5)
        assert restored.execute("SELECT id FROM people WHERE score IS NULL").rows() == [(3,)]

    def test_roundtrip_preserves_constraints(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        restored = Database.restore(directory)
        table = restored.table("people")
        assert table.primary_key == "id"
        with pytest.raises(Exception):
            restored.execute("INSERT INTO people VALUES (1, 'dup', 1, 1.0)")

    def test_roundtrip_preserves_versions(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        version = sample_table.table("people").version
        sample_table.checkpoint(directory)
        restored = Database.restore(directory)
        assert restored.table("people").version == version

    def test_multiple_tables(self, db, tmp_path):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y VARCHAR)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("INSERT INTO b VALUES ('hello')")
        directory = str(tmp_path / "ckpt")
        db.checkpoint(directory)
        restored = Database.restore(directory)
        assert restored.table_names() == ["a", "b"]

    def test_empty_table_roundtrip(self, db, tmp_path):
        db.execute("CREATE TABLE empty (x INTEGER, s VARCHAR)")
        directory = str(tmp_path / "ckpt")
        db.checkpoint(directory)
        restored = Database.restore(directory)
        assert restored.execute("SELECT COUNT(*) FROM empty").scalar() == 0


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(EngineError, match="manifest"):
            Database.restore(str(tmp_path / "nothing"))

    def test_missing_table_file(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        os.unlink(os.path.join(directory, "people.npz"))
        with pytest.raises(EngineError, match="missing"):
            Database.restore(directory)

    def test_row_count_mismatch_detected(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["tables"]["people"]["rows"] = 999
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(EngineError, match="row-count mismatch"):
            Database.restore(directory)

    def test_unsupported_format_version(self, sample_table, tmp_path):
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["format"] = 99
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(EngineError, match="format"):
            Database.restore(directory)

    def test_checkpoint_then_mutate_then_restore(self, sample_table, tmp_path):
        """Recovery returns to the checkpoint, not the later state."""
        directory = str(tmp_path / "ckpt")
        sample_table.checkpoint(directory)
        sample_table.execute("DELETE FROM people")
        restored = Database.restore(directory)
        assert restored.execute("SELECT COUNT(*) FROM people").scalar() == 5
