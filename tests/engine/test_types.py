"""Tests for the engine type system."""

import numpy as np
import pytest

from repro.engine.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    VARCHAR,
    coerce_python_value,
    common_type,
    infer_literal_type,
    type_from_name,
)
from repro.errors import TypeMismatchError


class TestTypeFromName:
    def test_canonical_names(self):
        assert type_from_name("INTEGER") is INTEGER
        assert type_from_name("FLOAT") is FLOAT
        assert type_from_name("VARCHAR") is VARCHAR
        assert type_from_name("BOOLEAN") is BOOLEAN

    def test_aliases(self):
        assert type_from_name("int") is INTEGER
        assert type_from_name("BIGINT") is INTEGER
        assert type_from_name("double") is FLOAT
        assert type_from_name("real") is FLOAT
        assert type_from_name("text") is VARCHAR
        assert type_from_name("string") is VARCHAR
        assert type_from_name("bool") is BOOLEAN

    def test_case_insensitive(self):
        assert type_from_name("InTeGeR") is INTEGER

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError, match="unknown SQL type"):
            type_from_name("blob")


class TestInferLiteralType:
    def test_bool_before_int(self):
        # bool is a subclass of int in Python; BOOLEAN must win.
        assert infer_literal_type(True) is BOOLEAN
        assert infer_literal_type(False) is BOOLEAN

    def test_scalars(self):
        assert infer_literal_type(7) is INTEGER
        assert infer_literal_type(7.5) is FLOAT
        assert infer_literal_type("x") is VARCHAR

    def test_numpy_scalars(self):
        assert infer_literal_type(np.int64(3)) is INTEGER
        assert infer_literal_type(np.float64(3.5)) is FLOAT
        assert infer_literal_type(np.bool_(True)) is BOOLEAN

    def test_unsupported_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_literal_type([1, 2])


class TestCommonType:
    def test_identity(self):
        for t in (INTEGER, FLOAT, VARCHAR, BOOLEAN):
            assert common_type(t, t) is t

    def test_numeric_widening(self):
        assert common_type(INTEGER, FLOAT) is FLOAT
        assert common_type(FLOAT, INTEGER) is FLOAT

    def test_incompatible(self):
        with pytest.raises(TypeMismatchError):
            common_type(INTEGER, VARCHAR)
        with pytest.raises(TypeMismatchError):
            common_type(BOOLEAN, FLOAT)


class TestCoercePythonValue:
    def test_none_passes_through(self):
        for t in (INTEGER, FLOAT, VARCHAR, BOOLEAN):
            assert coerce_python_value(None, t) is None

    def test_integer_accepts_exact_float(self):
        assert coerce_python_value(3.0, INTEGER) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_python_value(3.5, INTEGER)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce_python_value(True, INTEGER)

    def test_float_widens_int(self):
        value = coerce_python_value(3, FLOAT)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_python_value("3.5", FLOAT)

    def test_boolean_strict(self):
        assert coerce_python_value(True, BOOLEAN) is True
        with pytest.raises(TypeMismatchError):
            coerce_python_value(1, BOOLEAN)

    def test_varchar_strict(self):
        assert coerce_python_value("hi", VARCHAR) == "hi"
        with pytest.raises(TypeMismatchError):
            coerce_python_value(7, VARCHAR)

    def test_default_values_match_type(self):
        assert INTEGER.default_value() == 0
        assert FLOAT.default_value() == 0.0
        assert BOOLEAN.default_value() is False
        assert VARCHAR.default_value() == ""
