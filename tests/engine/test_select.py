"""End-to-end SELECT execution tests (parser + planner + operators)."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, PlanError, TypeMismatchError


@pytest.fixture
def graph_db(db: Database) -> Database:
    db.execute("CREATE TABLE node (id INTEGER, label VARCHAR)")
    db.execute("CREATE TABLE edge (src INTEGER, dst INTEGER, w FLOAT)")
    db.execute(
        "INSERT INTO node VALUES (0,'a'), (1,'b'), (2,'c'), (3,'a'), (4, NULL)"
    )
    db.execute(
        "INSERT INTO edge VALUES (0,1,1.0), (0,2,2.0), (1,2,0.5), (2,3,4.0), (3,0,1.5)"
    )
    return db


class TestProjection:
    def test_expressions_and_aliases(self, graph_db):
        rows = graph_db.execute(
            "SELECT id * 2 AS double_id, label FROM node ORDER BY id LIMIT 2"
        ).rows()
        assert rows == [(0, "a"), (2, "b")]

    def test_select_star(self, graph_db):
        result = graph_db.execute("SELECT * FROM node ORDER BY id")
        assert result.schema.names() == ["id", "label"]
        assert result.row_count == 5

    def test_select_without_from(self, db):
        assert db.execute("SELECT 2 + 3 * 4").scalar() == 14

    def test_duplicate_output_names_uniquified(self, graph_db):
        result = graph_db.execute("SELECT id, id FROM node LIMIT 1")
        assert result.schema.names() == ["id", "id_1"]


class TestWhere:
    def test_comparison(self, graph_db):
        rows = graph_db.execute("SELECT id FROM node WHERE id >= 3 ORDER BY id").rows()
        assert rows == [(3,), (4,)]

    def test_null_predicate_filters_row(self, graph_db):
        # label = 'a' is NULL for the NULL label row; WHERE keeps only TRUE.
        rows = graph_db.execute("SELECT id FROM node WHERE label = 'a' ORDER BY id").rows()
        assert rows == [(0,), (3,)]

    def test_is_null(self, graph_db):
        assert graph_db.execute("SELECT id FROM node WHERE label IS NULL").rows() == [(4,)]

    def test_in_and_between(self, graph_db):
        assert graph_db.execute(
            "SELECT COUNT(*) FROM node WHERE id IN (1, 3)"
        ).scalar() == 2
        assert graph_db.execute(
            "SELECT COUNT(*) FROM node WHERE id BETWEEN 1 AND 3"
        ).scalar() == 3

    def test_like(self, graph_db):
        graph_db.execute("INSERT INTO node VALUES (9, 'abc')")
        assert graph_db.execute(
            "SELECT id FROM node WHERE label LIKE 'ab_'"
        ).rows() == [(9,)]

    def test_where_must_be_boolean(self, graph_db):
        with pytest.raises(TypeMismatchError):
            graph_db.execute("SELECT id FROM node WHERE id + 1")


class TestJoins:
    def test_inner_join(self, graph_db):
        rows = graph_db.execute(
            "SELECT n.label, e.dst FROM node n JOIN edge e ON n.id = e.src "
            "ORDER BY e.src, e.dst"
        ).rows()
        assert rows[0] == ("a", 1)
        assert len(rows) == 5

    def test_left_join_pads_nulls(self, graph_db):
        rows = graph_db.execute(
            "SELECT n.id, e.dst FROM node n LEFT JOIN edge e ON n.id = e.src "
            "WHERE n.id = 4"
        ).rows()
        assert rows == [(4, None)]

    def test_self_join(self, graph_db):
        rows = graph_db.execute(
            "SELECT e1.src, e2.dst FROM edge e1 JOIN edge e2 ON e1.dst = e2.src "
            "ORDER BY 1, 2"
        ).rows()
        assert (0, 2) in rows  # 0->1->2

    def test_join_with_residual_condition(self, graph_db):
        rows = graph_db.execute(
            "SELECT e1.src, e2.src FROM edge e1 JOIN edge e2 "
            "ON e1.dst = e2.dst AND e1.src < e2.src"
        ).rows()
        assert rows == [(0, 1)]  # both 0->2 and 1->2

    def test_cross_join_count(self, graph_db):
        assert graph_db.execute(
            "SELECT COUNT(*) FROM node a CROSS JOIN node b"
        ).scalar() == 25

    def test_non_equi_inner_join_falls_back(self, graph_db):
        rows = graph_db.execute(
            "SELECT COUNT(*) FROM node a JOIN node b ON a.id < b.id"
        ).scalar()
        assert rows == 10

    def test_left_join_requires_equality(self, graph_db):
        with pytest.raises(PlanError, match="LEFT JOIN requires"):
            graph_db.execute("SELECT * FROM node a LEFT JOIN node b ON a.id < b.id")

    def test_null_keys_never_join(self, db):
        db.execute("CREATE TABLE l (k INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER)")
        db.execute("INSERT INTO l VALUES (1), (NULL)")
        db.execute("INSERT INTO r VALUES (1), (NULL)")
        assert db.execute(
            "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k"
        ).scalar() == 1

    def test_derived_table_join(self, graph_db):
        rows = graph_db.execute(
            "SELECT n.id, d.cnt FROM node n "
            "JOIN (SELECT src, COUNT(*) AS cnt FROM edge GROUP BY src) d "
            "ON n.id = d.src ORDER BY n.id"
        ).rows()
        assert rows[0] == (0, 2)


class TestAggregation:
    def test_global_aggregates(self, graph_db):
        row = graph_db.execute(
            "SELECT COUNT(*), SUM(w), MIN(w), MAX(w), AVG(w) FROM edge"
        ).rows()[0]
        assert row == (5, 9.0, 0.5, 4.0, 1.8)

    def test_global_aggregate_on_empty_table(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        row = db.execute("SELECT COUNT(*), SUM(x), MIN(x) FROM t").rows()[0]
        assert row == (0, None, None)

    def test_group_by_with_nulls_grouped(self, graph_db):
        rows = graph_db.execute(
            "SELECT label, COUNT(*) AS c FROM node GROUP BY label ORDER BY c DESC, label"
        ).rows()
        assert rows[0] == ("a", 2)
        assert (None, 1) in rows

    def test_having(self, graph_db):
        rows = graph_db.execute(
            "SELECT src, COUNT(*) AS c FROM edge GROUP BY src HAVING COUNT(*) > 1"
        ).rows()
        assert rows == [(0, 2)]

    def test_count_distinct(self, graph_db):
        assert graph_db.execute(
            "SELECT COUNT(DISTINCT label) FROM node"
        ).scalar() == 3  # NULL not counted

    def test_aggregate_expression_in_projection(self, graph_db):
        value = graph_db.execute("SELECT SUM(w) / COUNT(*) FROM edge").scalar()
        assert value == pytest.approx(1.8)

    def test_group_by_alias_and_position(self, graph_db):
        by_alias = graph_db.execute(
            "SELECT label AS l, COUNT(*) FROM node GROUP BY l ORDER BY 1"
        ).rows()
        by_position = graph_db.execute(
            "SELECT label, COUNT(*) FROM node GROUP BY 1 ORDER BY 1"
        ).rows()
        assert by_alias == by_position

    def test_ungrouped_column_rejected(self, graph_db):
        with pytest.raises(PlanError, match="GROUP BY"):
            graph_db.execute("SELECT label, id, COUNT(*) FROM node GROUP BY label")

    def test_nested_aggregate_rejected(self, graph_db):
        with pytest.raises(PlanError, match="nested aggregate"):
            graph_db.execute("SELECT SUM(COUNT(*)) FROM node")

    def test_stddev(self, db):
        db.execute("CREATE TABLE t (x FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)")
        assert db.execute("SELECT STDDEV(x) FROM t").scalar() == pytest.approx(1.0)

    def test_aggregates_ignore_nulls(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (NULL), (3)")
        row = db.execute("SELECT COUNT(x), SUM(x), AVG(x) FROM t").rows()[0]
        assert row == (2, 4, 2.0)


class TestOrderLimitDistinct:
    def test_order_by_multiple_keys(self, graph_db):
        rows = graph_db.execute(
            "SELECT label, id FROM node ORDER BY label DESC, id ASC"
        ).rows()
        # NULL label sorts as largest -> first under DESC.
        assert rows[0] == (None, 4)
        assert rows[-1] == ("a", 3)

    def test_order_by_expression_not_in_select(self, graph_db):
        rows = graph_db.execute("SELECT id FROM node ORDER BY id * -1").rows()
        assert [r[0] for r in rows] == [4, 3, 2, 1, 0]

    def test_order_by_alias(self, graph_db):
        rows = graph_db.execute(
            "SELECT id * 2 AS d FROM node ORDER BY d DESC LIMIT 1"
        ).rows()
        assert rows == [(8,)]

    def test_limit_offset(self, graph_db):
        rows = graph_db.execute(
            "SELECT id FROM node ORDER BY id LIMIT 2 OFFSET 1"
        ).rows()
        assert rows == [(1,), (2,)]

    def test_distinct(self, graph_db):
        rows = graph_db.execute("SELECT DISTINCT label FROM node ORDER BY label").rows()
        assert rows == [("a",), ("b",), ("c",), (None,)]

    def test_sort_stability(self, db):
        db.execute("CREATE TABLE t (k INTEGER, seq INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 1), (1, 2), (1, 3), (0, 4)")
        rows = db.execute("SELECT seq FROM t ORDER BY k").rows()
        assert [r[0] for r in rows] == [4, 1, 2, 3]


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, graph_db):
        count = graph_db.execute(
            "SELECT src FROM edge UNION ALL SELECT dst FROM edge"
        ).row_count
        assert count == 10

    def test_union_dedups(self, graph_db):
        rows = graph_db.execute(
            "SELECT src FROM edge UNION SELECT dst FROM edge ORDER BY 1"
        ).rows()
        assert rows == [(0,), (1,), (2,), (3,)]

    def test_union_incompatible_schemas(self, graph_db):
        with pytest.raises(TypeMismatchError):
            graph_db.execute("SELECT id FROM node UNION SELECT label FROM node")


class TestMisc:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError, match="unknown table"):
            db.execute("SELECT * FROM ghosts")

    def test_unknown_column(self, graph_db):
        with pytest.raises(CatalogError, match="unknown column"):
            graph_db.execute("SELECT nope FROM node")

    def test_explain_produces_tree(self, graph_db):
        plan = graph_db.explain(
            "SELECT label, COUNT(*) FROM node WHERE id > 0 GROUP BY label"
        )
        assert "Aggregate" in plan and "Filter" in plan and "TableScan" in plan

    def test_case_expression(self, graph_db):
        rows = graph_db.execute(
            "SELECT id, CASE WHEN id < 2 THEN 'low' WHEN id < 4 THEN 'mid' "
            "ELSE 'high' END AS bucket FROM node ORDER BY id"
        ).rows()
        assert [r[1] for r in rows] == ["low", "low", "mid", "mid", "high"]

    def test_division_by_zero_is_null(self, db):
        assert db.execute("SELECT 1 / 0").scalar() is None
        assert db.execute("SELECT 1.0 / 0.0").scalar() is None

    def test_division_returns_float(self, db):
        assert db.execute("SELECT 7 / 2").scalar() == 3.5

    def test_modulo(self, db):
        assert db.execute("SELECT 7 % 3").scalar() == 1

    def test_three_valued_logic(self, db):
        assert db.execute("SELECT NULL AND FALSE").scalar() is False
        assert db.execute("SELECT NULL AND TRUE").scalar() is None
        assert db.execute("SELECT NULL OR TRUE").scalar() is True
        assert db.execute("SELECT NULL OR FALSE").scalar() is None
