"""Tests for the Result boundary object and parallel-executor edges."""

import pytest

from repro.engine import Database
from repro.engine.parallel import make_thread_executor, serial_executor
from repro.errors import ExecutionError


class TestResult:
    def test_query_result_accessors(self, sample_table):
        result = sample_table.execute("SELECT id, name FROM people ORDER BY id LIMIT 2")
        assert result.is_query
        assert result.row_count == 2
        assert len(result) == 2
        assert list(result) == [(1, "alice"), (2, "bob")]
        assert result.column("name") == ["alice", "bob"]
        assert result.to_dicts() == [
            {"id": 1, "name": "alice"},
            {"id": 2, "name": "bob"},
        ]
        assert result.schema.names() == ["id", "name"]

    def test_dml_result_has_no_rows(self, sample_table):
        result = sample_table.execute("DELETE FROM people WHERE id = 1")
        assert not result.is_query
        assert result.row_count == 1
        with pytest.raises(ExecutionError, match="did not produce rows"):
            result.rows()

    def test_scalar_requires_1x1(self, sample_table):
        with pytest.raises(ExecutionError, match="1x1"):
            sample_table.execute("SELECT id, name FROM people").scalar()
        with pytest.raises(ExecutionError, match="1x1"):
            sample_table.execute("SELECT id FROM people").scalar()

    def test_scalar_null(self, db):
        assert db.execute("SELECT NULL AND TRUE").scalar() is None

    def test_statements_counter(self, db):
        before = db.statements_executed
        db.execute("SELECT 1")
        db.execute_script("SELECT 1; SELECT 2")
        assert db.statements_executed == before + 3


class TestParallelExecutors:
    def test_serial_preserves_order(self):
        from repro.engine.batch import RecordBatch
        from repro.engine.schema import ColumnDef, Schema
        from repro.engine.types import INTEGER

        schema = Schema([ColumnDef("x", INTEGER)])

        def fn(batch, index):
            return RecordBatch.from_rows(schema, [(index,)])

        tasks = [(RecordBatch.empty(schema), i) for i in (3, 1, 2)]
        out = serial_executor(fn, tasks)
        assert [b.to_rows()[0][0] for b in out] == [3, 1, 2]

    def test_thread_pool_preserves_order(self):
        from repro.engine.batch import RecordBatch
        from repro.engine.schema import ColumnDef, Schema
        from repro.engine.types import INTEGER

        schema = Schema([ColumnDef("x", INTEGER)])

        def fn(batch, index):
            return RecordBatch.from_rows(schema, [(index,)])

        tasks = [(RecordBatch.empty(schema), i) for i in range(16)]
        with make_thread_executor(4) as executor:
            out = executor(fn, tasks)
        assert [b.to_rows()[0][0] for b in out] == list(range(16))

    def test_thread_count_clamped(self):
        executor = make_thread_executor(0)  # clamps to 1, no crash
        from repro.engine.batch import RecordBatch
        from repro.engine.schema import ColumnDef, Schema
        from repro.engine.types import INTEGER

        schema = Schema([ColumnDef("x", INTEGER)])
        out = executor(lambda b, i: b, [(RecordBatch.empty(schema), 0)])
        assert len(out) == 1
