"""Change capture: per-table row deltas keyed by version."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.changelog import ChangeLog
from repro.engine.persistence import read_checkpoint_metadata
from repro.errors import EngineError


@pytest.fixture
def loaded(db: Database) -> Database:
    db.execute("CREATE TABLE t (id INTEGER, v FLOAT)")
    db.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
    return db


def bookmark(db: Database, name: str = "t"):
    return db.table_state(name)


class TestRowDeltas:
    def test_insert_captured(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("INSERT INTO t VALUES (4, 4.0)")
        delta = loaded.changes_since("t", uid, version)
        assert delta.inserted.to_rows() == [(4, 4.0)]
        assert delta.deleted.num_rows == 0
        assert delta.num_rows == 1 and not delta.empty

    def test_delete_captured(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("DELETE FROM t WHERE id >= 2")
        delta = loaded.changes_since("t", uid, version)
        assert delta.inserted.num_rows == 0
        assert sorted(delta.deleted.to_rows()) == [(2, 2.0), (3, 3.0)]

    def test_update_is_delete_plus_insert(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("UPDATE t SET v = 9.0 WHERE id = 2")
        delta = loaded.changes_since("t", uid, version)
        assert delta.deleted.to_rows() == [(2, 2.0)]
        assert delta.inserted.to_rows() == [(2, 9.0)]

    def test_window_accumulates_in_order(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("INSERT INTO t VALUES (4, 4.0)")
        loaded.execute("DELETE FROM t WHERE id = 1")
        loaded.execute("INSERT INTO t VALUES (5, 5.0)")
        delta = loaded.changes_since("t", uid, version)
        assert delta.inserted.to_rows() == [(4, 4.0), (5, 5.0)]
        assert delta.deleted.to_rows() == [(1, 1.0)]

    def test_capture_is_armed_lazily(self, loaded):
        """Until a bookmark is taken, nothing is recorded and nothing is
        answerable — tables nobody derives from pay zero overhead."""
        table = loaded.table("t")
        assert not table.changelog.enabled
        loaded.execute("INSERT INTO t VALUES (6, 6.0)")
        assert table.changelog.retained_rows == 0
        assert table.changes_since(0) is None  # never armed
        uid, version = bookmark(loaded)  # arms capture
        assert table.changelog.enabled
        loaded.execute("INSERT INTO t VALUES (7, 7.0)")
        assert loaded.changes_since("t", uid, version).inserted.to_rows() == [(7, 7.0)]

    def test_same_version_is_empty_delta(self, loaded):
        uid, version = bookmark(loaded)
        delta = loaded.changes_since("t", uid, version)
        assert delta.empty

    def test_noop_dml_records_nothing(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("DELETE FROM t WHERE id = 99")
        loaded.execute("UPDATE t SET v = 0.0 WHERE id = 99")
        assert loaded.table("t").version == version  # no bump
        assert loaded.changes_since("t", uid, version).empty


class TestWindowInvalidation:
    def test_truncate_resets(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("TRUNCATE t")
        assert loaded.changes_since("t", uid, version) is None
        # A fresh bookmark after the reset works again.
        uid, version = bookmark(loaded)
        loaded.execute("INSERT INTO t VALUES (7, 7.0)")
        assert loaded.changes_since("t", uid, version).inserted.num_rows == 1

    def test_replace_data_resets(self, loaded):
        uid, version = bookmark(loaded)
        table = loaded.table("t")
        table.replace_data(table.data())
        assert loaded.changes_since("t", uid, version) is None

    def test_drop_and_recreate_changes_uid(self, loaded):
        uid, version = bookmark(loaded)
        loaded.execute("DROP TABLE t")
        loaded.execute("CREATE TABLE t (id INTEGER, v FLOAT)")
        assert loaded.changes_since("t", uid, version) is None  # uid mismatch

    def test_rollback_resets_touched_tables_only(self, loaded):
        loaded.execute("CREATE TABLE other (x INTEGER)")
        uid_t, v_t = bookmark(loaded)
        uid_o, v_o = bookmark(loaded, "other")
        loaded.begin()
        loaded.execute("INSERT INTO t VALUES (8, 8.0)")
        loaded.rollback()
        # t was rewound: its forward window is gone.
        assert loaded.changes_since("t", uid_t, v_t) is None
        # other was untouched: rollback must not cost it its window.
        loaded.execute("INSERT INTO other VALUES (1)")
        delta = loaded.changes_since("other", uid_o, v_o)
        assert delta is not None and delta.inserted.num_rows == 1

    def test_future_version_unanswerable(self, loaded):
        uid, version = bookmark(loaded)
        assert loaded.changes_since("t", uid, version + 5) is None

    def test_capacity_eviction_shrinks_window(self, loaded):
        table = loaded.table("t")
        table.changelog.capacity = 4
        uid, version = bookmark(loaded)
        for i in range(10, 18):
            loaded.execute(f"INSERT INTO t VALUES ({i}, 0.5)")
        assert loaded.changes_since("t", uid, version) is None  # evicted
        uid, version = bookmark(loaded)
        loaded.execute("INSERT INTO t VALUES (99, 9.9)")
        assert loaded.changes_since("t", uid, version).inserted.num_rows == 1


class TestChangeLogUnit:
    def test_retained_rows_tracks_eviction(self):
        from repro.engine.batch import RecordBatch
        from repro.engine.schema import ColumnDef, Schema
        from repro.engine.types import INTEGER

        schema = Schema([ColumnDef("x", INTEGER)])
        log = ChangeLog(enabled=True, capacity=3)
        for version in (1, 2, 3):
            log.record(version, inserted=RecordBatch.from_rows(schema, [(version,)]))
        assert log.retained_rows == 3
        log.record(4, inserted=RecordBatch.from_rows(schema, [(4,), (5,)]))
        assert log.retained_rows <= 3
        assert log.start_version >= 2


class TestCheckpointMetadata:
    def test_metadata_round_trip(self, db, tmp_path):
        db.execute("CREATE TABLE t (id INTEGER)")
        directory = str(tmp_path / "ckpt")
        db.checkpoint(directory, metadata={"layer": {"answer": 42}})
        assert read_checkpoint_metadata(directory) == {"layer": {"answer": 42}}

    def test_metadata_defaults_empty(self, db, tmp_path):
        directory = str(tmp_path / "ckpt")
        db.checkpoint(directory)
        assert read_checkpoint_metadata(directory) == {}

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(EngineError, match="manifest"):
            read_checkpoint_metadata(str(tmp_path / "nowhere"))

    def test_restored_table_answers_from_restore_point(self, db, tmp_path):
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        directory = str(tmp_path / "ckpt")
        db.checkpoint(directory)
        restored = Database.restore(directory)
        uid, version = restored.table_state("t")
        assert restored.changes_since("t", uid, version).empty
        restored.execute("INSERT INTO t VALUES (2)")
        assert restored.changes_since("t", uid, version).inserted.to_rows() == [(2,)]
        # The pre-restart window is gone by construction (fresh uid).
        assert np.array_equal(
            restored.table("t").data().column("id").values, np.array([1, 2])
        )
