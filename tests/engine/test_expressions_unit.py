"""Direct unit tests for expression evaluation (bypassing SQL text)."""

import numpy as np
import pytest

from repro.engine.batch import RecordBatch
from repro.engine.expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    UnaryOp,
    contains_aggregate,
    evaluate,
    expression_name,
    infer_type,
)
from repro.engine.functions import AGGREGATE_NAMES, FunctionRegistry
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR
from repro.errors import TypeMismatchError

REGISTRY = FunctionRegistry()

SCHEMA = Schema(
    [
        ColumnDef("i", INTEGER),
        ColumnDef("f", FLOAT),
        ColumnDef("s", VARCHAR),
        ColumnDef("b", BOOLEAN),
    ]
)
BATCH = RecordBatch.from_rows(
    SCHEMA,
    [
        (1, 1.5, "apple", True),
        (None, -2.0, "banana", False),
        (3, None, None, None),
    ],
)


def run(expr):
    return evaluate(expr, BATCH, REGISTRY).to_list()


class TestArithmetic:
    def test_addition_propagates_null(self):
        assert run(BinaryOp("+", ColumnRef("i"), Literal(1))) == [2, None, 4]

    def test_mixed_int_float_widens(self):
        out = run(BinaryOp("*", ColumnRef("i"), ColumnRef("f")))
        assert out == [1.5, None, None]
        assert infer_type(
            BinaryOp("*", ColumnRef("i"), ColumnRef("f")), SCHEMA, REGISTRY
        ) is FLOAT

    def test_unary_minus(self):
        assert run(UnaryOp("-", ColumnRef("f"))) == [-1.5, 2.0, None]

    def test_modulo_by_zero_null(self):
        assert run(BinaryOp("%", ColumnRef("i"), Literal(0))) == [None, None, None]

    def test_string_arithmetic_rejected(self):
        with pytest.raises(TypeMismatchError):
            run(BinaryOp("+", ColumnRef("s"), Literal(1)))


class TestComparisons:
    def test_integer_comparison(self):
        assert run(BinaryOp(">=", ColumnRef("i"), Literal(3))) == [False, None, True]

    def test_string_comparison(self):
        assert run(BinaryOp("<", ColumnRef("s"), Literal("b"))) == [True, False, None]

    def test_boolean_comparison(self):
        assert run(BinaryOp("=", ColumnRef("b"), Literal(True))) == [True, False, None]

    def test_cross_type_comparison_rejected(self):
        with pytest.raises(TypeMismatchError):
            run(BinaryOp("=", ColumnRef("s"), Literal(1)))


class TestPredicates:
    def test_between_inclusive(self):
        assert run(Between(ColumnRef("i"), Literal(1), Literal(3))) == [True, None, True]

    def test_not_between(self):
        out = run(Between(ColumnRef("i"), Literal(2), Literal(9), negated=True))
        assert out == [True, None, False]

    def test_in_list_with_null_operand(self):
        assert run(InList(ColumnRef("i"), (Literal(1), Literal(2)))) == [True, None, False]

    def test_in_list_null_item_semantics(self):
        # 3 IN (1, NULL) is NULL, not FALSE.
        out = run(InList(ColumnRef("i"), (Literal(1), Literal(None))))
        assert out == [True, None, None]

    def test_is_null_and_negation(self):
        assert run(IsNull(ColumnRef("i"))) == [False, True, False]
        assert run(IsNull(ColumnRef("i"), negated=True)) == [True, False, True]

    def test_like_wildcards(self):
        assert run(LikeExpr(ColumnRef("s"), Literal("%an%"))) == [False, True, None]
        assert run(LikeExpr(ColumnRef("s"), Literal("a___e"))) == [True, False, None]

    def test_like_escapes_regex_chars(self):
        batch = RecordBatch.from_rows(
            Schema([ColumnDef("s", VARCHAR)]), [("a.c",), ("abc",)]
        )
        out = evaluate(
            LikeExpr(ColumnRef("s"), Literal("a.c")), batch, REGISTRY
        ).to_list()
        assert out == [True, False]  # '.' is literal, not regex

    def test_not_like(self):
        assert run(LikeExpr(ColumnRef("s"), Literal("a%"), negated=True)) == [
            False, True, None,
        ]


class TestCase:
    def test_simple_case_with_operand(self):
        expr = CaseExpr(
            whens=((Literal(1), Literal("one")), (Literal(3), Literal("three"))),
            default=Literal("other"),
            operand=ColumnRef("i"),
        )
        assert run(expr) == ["one", "other", "three"]

    def test_case_without_else_yields_null(self):
        expr = CaseExpr(whens=((BinaryOp(">", ColumnRef("i"), Literal(2)), Literal(1)),))
        assert run(expr) == [None, None, 1]

    def test_branch_type_unification(self):
        expr = CaseExpr(
            whens=((BinaryOp("=", ColumnRef("i"), Literal(1)), Literal(1)),),
            default=Literal(2.5),
        )
        assert infer_type(expr, SCHEMA, REGISTRY) is FLOAT
        # NULL condition is not-matched, so the ELSE branch applies (SQL).
        assert run(expr) == [1.0, 2.5, 2.5]

    def test_first_matching_when_wins(self):
        expr = CaseExpr(
            whens=(
                (BinaryOp(">", ColumnRef("i"), Literal(0)), Literal("pos")),
                (BinaryOp(">", ColumnRef("i"), Literal(2)), Literal("big")),
            ),
            default=Literal("none"),
        )
        assert run(expr) == ["pos", "none", "pos"]


class TestCast:
    def test_cast_float_to_varchar(self):
        out = run(CastExpr(ColumnRef("i"), "varchar"))
        assert out == ["1", None, "3"]

    def test_cast_preserves_nulls(self):
        assert run(CastExpr(ColumnRef("f"), "integer")) == [1, -2, None]


class TestHelpers:
    def test_expression_name(self):
        assert expression_name(ColumnRef("x")) == "x"
        assert expression_name(FunctionCall("SUM", (ColumnRef("x"),))) == "sum"
        assert expression_name(Literal(5)) == "expr"
        assert expression_name(CastExpr(ColumnRef("y"), "float")) == "y"

    def test_contains_aggregate(self):
        agg = FunctionCall("SUM", (ColumnRef("i"),))
        wrapped = BinaryOp("+", agg, Literal(1))
        assert contains_aggregate(wrapped, AGGREGATE_NAMES)
        assert not contains_aggregate(ColumnRef("i"), AGGREGATE_NAMES)

    def test_nodes_are_hashable_and_comparable(self):
        a = BinaryOp("+", ColumnRef("i"), Literal(1))
        b = BinaryOp("+", ColumnRef("i"), Literal(1))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
