"""Executor error handling: first-failure propagation with task context,
sibling cancellation, idempotent/exception-safe close — and the
process-pool executor's ordering, bootstrap, and failure contracts."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.engine.parallel import (
    ProcessExecutor,
    ThreadExecutor,
    WorkerProcessDied,
    serial_executor,
)


class TestSerialExecutor:
    def test_order_preserved(self):
        out = serial_executor(lambda item, index: item * 10 + index, [(1, 0), (2, 1)])
        assert out == [10, 21]

    def test_exception_propagates(self):
        def boom(item, index):
            raise ValueError(f"task {index}")

        with pytest.raises(ValueError, match="task 0"):
            serial_executor(boom, [(None, 0), (None, 1)])


class TestThreadExecutor:
    def test_order_preserved_across_threads(self):
        ex = ThreadExecutor(4)
        try:
            tasks = [(i, i) for i in range(16)]

            def jittered(item, index):
                time.sleep(0.001 * ((7 - index) % 8))
                return item * 2

            assert ex(jittered, tasks) == [i * 2 for i in range(16)]
        finally:
            ex.close()

    def test_first_failed_task_wins_with_context(self):
        """The earliest (task-order) failure is what propagates, with a
        note naming the failed task."""
        ex = ThreadExecutor(4)
        try:
            def boom(item, index):
                if index == 1:
                    raise RuntimeError("shard exploded")
                return item

            with pytest.raises(RuntimeError, match="shard exploded") as excinfo:
                ex(boom, [(i, i) for i in range(8)])
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("parallel task 1" in note for note in notes)
        finally:
            ex.close()

    def test_failure_cancels_queued_siblings(self):
        """With a single worker thread, a failure in the first task must
        prevent queued siblings from ever starting."""
        ex = ThreadExecutor(1)
        ran: list[int] = []
        try:
            def boom_first(item, index):
                ran.append(index)
                if index == 0:
                    raise RuntimeError("first task fails")
                return item

            with pytest.raises(RuntimeError):
                ex(boom_first, [(i, i) for i in range(6)])
            # task 0 ran and failed; at most one sibling squeezed in
            # before the cancellation took effect
            assert 0 in ran
            assert len(ran) <= 2
        finally:
            ex.close()

    def test_sibling_failures_are_noted(self):
        """Regression: when several tasks fail, only the first used to be
        retrieved — the rest were silently dropped with their futures.
        Now the primary failure carries a note enumerating its siblings."""
        barrier = threading.Barrier(2)
        ex = ThreadExecutor(2)
        try:
            def boom_both(item, index):
                barrier.wait(timeout=5)  # both tasks are mid-flight: neither cancellable
                raise RuntimeError(f"failure {index}")

            with pytest.raises(RuntimeError, match="failure 0") as excinfo:
                ex(boom_both, [(None, 0), (None, 1)])
            notes = "\n".join(getattr(excinfo.value, "__notes__", []))
            assert "parallel task 0" in notes
            assert "1 sibling task(s) also failed" in notes
            assert "RuntimeError: failure 1" in notes
        finally:
            ex.close()

    def test_close_is_idempotent(self):
        ex = ThreadExecutor(2)
        ex([].__class__, [])  # no-op call, no pool yet
        ex.close()
        ex.close()  # second close: no error

    def test_usable_after_close(self):
        ex = ThreadExecutor(2)
        try:
            assert ex(lambda item, index: item + index, [(1, 0), (2, 1)]) == [1, 3]
            ex.close()
            assert ex(lambda item, index: item + index, [(1, 0), (2, 1)]) == [1, 3]
        finally:
            ex.close()

    def test_concurrent_close_is_safe(self):
        ex = ThreadExecutor(2)
        ex(lambda item, index: item, [(1, 0), (2, 1)])  # force pool creation
        threads = [threading.Thread(target=ex.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_context_manager_closes(self):
        with ThreadExecutor(2) as ex:
            assert ex(lambda item, index: item, [(1, 0), (2, 1)]) == [1, 2]
        ex.close()  # already closed by __exit__; still safe


# ---------------------------------------------------------------------------
# ProcessExecutor: spawned workers need module-level (picklable) helpers
# ---------------------------------------------------------------------------
_BOOT_VALUE: int | None = None


def _mul(item, index):
    return item * 10 + index


class _SetBootValue:
    """A picklable bootstrap: records a value in the worker's module."""

    def __init__(self, value: int) -> None:
        self.value = value

    def __call__(self) -> None:
        global _BOOT_VALUE
        _BOOT_VALUE = self.value


def _read_boot_value(item, index):
    return (os.getpid(), _BOOT_VALUE)


def _boom_at(item, index):
    if index in (2, 3):
        raise ValueError(f"remote task {index} exploded")
    return item


class _TestKill(BaseException):
    pass


def _kill_at(item, index):
    if index == 1:
        raise _TestKill("killed")
    return item


def _die_at(item, index):
    if index == 1:
        os._exit(3)  # simulate a crashed worker: no reply, no cleanup
    return item


class TestProcessExecutor:
    def test_order_preserved_across_processes(self):
        with ProcessExecutor(2) as ex:
            tasks = [(i, i) for i in range(8)]
            assert ex(_mul, tasks) == [i * 10 + i for i in range(8)]
            # pool is persistent: a second call reuses the same workers
            assert ex(_mul, tasks) == [i * 10 + i for i in range(8)]

    def test_single_task_runs_in_process(self):
        """Serial fallback: nothing pickles, so even closures work."""
        with ProcessExecutor(4) as ex:
            marker = object()
            assert ex(lambda item, index: item, [(marker, 0)]) == [marker]

    def test_install_runs_in_every_worker(self):
        with ProcessExecutor(2) as ex:
            ex.install(_SetBootValue(42))
            out = ex(_read_boot_value, [(None, i) for i in range(8)])
            pids = {pid for pid, _ in out}
            assert len(pids) == 2  # both workers took tasks
            assert all(value == 42 for _, value in out)
            # a re-install (e.g. after a plane rebuild) replaces the state
            ex.install(_SetBootValue(7))
            out = ex(_read_boot_value, [(None, i) for i in range(8)])
            assert all(value == 7 for _, value in out)

    def test_install_before_spawn_replays_at_start(self):
        with ProcessExecutor(2) as ex:
            ex.install(_SetBootValue(13))  # no workers yet: stored only
            out = ex(_read_boot_value, [(None, i) for i in range(4)])
            assert all(value == 13 for _, value in out)

    def test_remote_failure_carries_context(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(ValueError, match="remote task 2 exploded") as excinfo:
                ex(_boom_at, [(i, i) for i in range(6)])
            notes = "\n".join(getattr(excinfo.value, "__notes__", []))
            assert "parallel task 2 (in a worker process)" in notes
            assert "remote traceback" in notes
            # the second failure (task 3) is enumerated, not dropped
            assert "sibling task(s) also failed" in notes
            assert "remote task 3 exploded" in notes
            # the pool survives a task failure
            assert ex(_mul, [(i, i) for i in range(4)]) == [0, 11, 22, 33]

    def test_base_exception_kill_wins_and_crosses(self):
        """A non-Exception BaseException (an injected kill) raised inside
        a worker must come back as-is and take priority."""
        with ProcessExecutor(2) as ex:
            with pytest.raises(_TestKill):
                ex(_kill_at, [(i, i) for i in range(4)])

    def test_dead_worker_is_transient_and_pool_recovers(self):
        from repro.core import faults

        with ProcessExecutor(2) as ex:
            ex.install(_SetBootValue(99))
            with pytest.raises(WorkerProcessDied) as excinfo:
                ex(_die_at, [(i, i) for i in range(4)])
            assert faults.is_transient(excinfo.value)
            # next call respawns the pool and replays the bootstrap
            out = ex(_read_boot_value, [(None, i) for i in range(4)])
            assert all(value == 99 for _, value in out)

    def test_close_is_idempotent_and_reusable(self):
        ex = ProcessExecutor(2)
        try:
            assert ex(_mul, [(1, 0), (2, 1)]) == [10, 21]
            ex.close()
            ex.close()
            assert ex(_mul, [(1, 0), (2, 1)]) == [10, 21]  # fresh pool
        finally:
            ex.close()
