"""Executor error handling: first-failure propagation with task context,
sibling cancellation, and idempotent/exception-safe close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.parallel import ThreadExecutor, serial_executor


class TestSerialExecutor:
    def test_order_preserved(self):
        out = serial_executor(lambda item, index: item * 10 + index, [(1, 0), (2, 1)])
        assert out == [10, 21]

    def test_exception_propagates(self):
        def boom(item, index):
            raise ValueError(f"task {index}")

        with pytest.raises(ValueError, match="task 0"):
            serial_executor(boom, [(None, 0), (None, 1)])


class TestThreadExecutor:
    def test_order_preserved_across_threads(self):
        ex = ThreadExecutor(4)
        try:
            tasks = [(i, i) for i in range(16)]

            def jittered(item, index):
                time.sleep(0.001 * ((7 - index) % 8))
                return item * 2

            assert ex(jittered, tasks) == [i * 2 for i in range(16)]
        finally:
            ex.close()

    def test_first_failed_task_wins_with_context(self):
        """The earliest (task-order) failure is what propagates, with a
        note naming the failed task."""
        ex = ThreadExecutor(4)
        try:
            def boom(item, index):
                if index == 1:
                    raise RuntimeError("shard exploded")
                return item

            with pytest.raises(RuntimeError, match="shard exploded") as excinfo:
                ex(boom, [(i, i) for i in range(8)])
            notes = getattr(excinfo.value, "__notes__", [])
            assert any("parallel task 1" in note for note in notes)
        finally:
            ex.close()

    def test_failure_cancels_queued_siblings(self):
        """With a single worker thread, a failure in the first task must
        prevent queued siblings from ever starting."""
        ex = ThreadExecutor(1)
        ran: list[int] = []
        try:
            def boom_first(item, index):
                ran.append(index)
                if index == 0:
                    raise RuntimeError("first task fails")
                return item

            with pytest.raises(RuntimeError):
                ex(boom_first, [(i, i) for i in range(6)])
            # task 0 ran and failed; at most one sibling squeezed in
            # before the cancellation took effect
            assert 0 in ran
            assert len(ran) <= 2
        finally:
            ex.close()

    def test_close_is_idempotent(self):
        ex = ThreadExecutor(2)
        ex([].__class__, [])  # no-op call, no pool yet
        ex.close()
        ex.close()  # second close: no error

    def test_usable_after_close(self):
        ex = ThreadExecutor(2)
        try:
            assert ex(lambda item, index: item + index, [(1, 0), (2, 1)]) == [1, 3]
            ex.close()
            assert ex(lambda item, index: item + index, [(1, 0), (2, 1)]) == [1, 3]
        finally:
            ex.close()

    def test_concurrent_close_is_safe(self):
        ex = ThreadExecutor(2)
        ex(lambda item, index: item, [(1, 0), (2, 1)])  # force pool creation
        threads = [threading.Thread(target=ex.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_context_manager_closes(self):
        with ThreadExecutor(2) as ex:
            assert ex(lambda item, index: item, [(1, 0), (2, 1)]) == [1, 2]
        ex.close()  # already closed by __exit__; still safe
