"""Tests for the SQL parser (AST construction, not execution)."""

import pytest

from repro.engine.expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
)
from repro.engine.sql.ast import (
    CreateTableAsStatement,
    CreateTableStatement,
    DeleteStatement,
    DerivedTable,
    DropTableStatement,
    InsertStatement,
    Join,
    NamedTable,
    SelectStatement,
    SetOperation,
    TruncateStatement,
    UpdateStatement,
)
from repro.engine.sql.parser import parse_statement, parse_statements
from repro.errors import SqlSyntaxError


def parse_expr(sql: str):
    stmt = parse_statement(f"SELECT {sql}")
    return stmt.items[0].expr


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_binds_tighter_than_or(self):
        expr = parse_expr("a OR b AND c")
        assert expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_not(self):
        expr = parse_expr("NOT a = b")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"
        assert isinstance(expr.operand, BinaryOp)

    def test_unary_minus_folds_literal(self):
        assert parse_expr("-5") == Literal(-5)

    def test_unary_minus_on_column(self):
        expr = parse_expr("-x")
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_qualified_column(self):
        assert parse_expr("e.src") == ColumnRef("src", qualifier="e")

    def test_function_call(self):
        expr = parse_expr("count(DISTINCT x)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "count" and expr.distinct

    def test_count_star(self):
        expr = parse_expr("count(*)")
        assert isinstance(expr.args[0], Star)

    def test_between_and_not_between(self):
        assert isinstance(parse_expr("x BETWEEN 1 AND 2"), Between)
        expr = parse_expr("x NOT BETWEEN 1 AND 2")
        assert isinstance(expr, Between) and expr.negated

    def test_in_list(self):
        expr = parse_expr("x IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_is_null_variants(self):
        assert isinstance(parse_expr("x IS NULL"), IsNull)
        expr = parse_expr("x IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_like(self):
        expr = parse_expr("name NOT LIKE 'a%'")
        assert isinstance(expr, LikeExpr) and expr.negated

    def test_case_searched(self):
        expr = parse_expr("CASE WHEN x > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(expr, CaseExpr)
        assert expr.operand is None and expr.default is not None

    def test_case_simple(self):
        expr = parse_expr("CASE x WHEN 1 THEN 'one' END")
        assert isinstance(expr, CaseExpr) and expr.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_expr("CASE ELSE 1 END")

    def test_cast(self):
        expr = parse_expr("CAST(x AS integer)")
        assert isinstance(expr, CastExpr) and expr.type_name == "integer"

    def test_boolean_literals(self):
        assert parse_expr("TRUE") == Literal(True)
        assert parse_expr("NULL") == Literal(None)

    def test_string_concat_operator(self):
        assert parse_expr("a || b").op == "||"


class TestSelect:
    def test_full_clause_order(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) AS c FROM t WHERE a > 0 GROUP BY a "
            "HAVING COUNT(*) > 1 ORDER BY c DESC LIMIT 5 OFFSET 2"
        )
        assert isinstance(stmt, SelectStatement)
        assert stmt.items[1].alias == "c"
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert not stmt.order_by[0].ascending
        assert stmt.limit == 5 and stmt.offset == 2

    def test_alias_without_as(self):
        stmt = parse_statement("SELECT x total FROM t")
        assert stmt.items[0].alias == "total"

    def test_star_and_qualified_star(self):
        stmt = parse_statement("SELECT *, e.* FROM t")
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.items[1].expr.qualifier == "e"

    def test_join_chain_left_deep(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = stmt.from_clause
        assert isinstance(join, Join) and join.kind == "left"
        assert isinstance(join.left, Join) and join.left.kind == "inner"

    def test_cross_join_and_comma(self):
        explicit = parse_statement("SELECT * FROM a CROSS JOIN b").from_clause
        comma = parse_statement("SELECT * FROM a, b").from_clause
        assert isinstance(explicit, Join) and explicit.kind == "cross"
        assert isinstance(comma, Join) and comma.kind == "cross"

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1 AS x) AS d")
        assert isinstance(stmt.from_clause, DerivedTable)
        assert stmt.from_clause.alias == "d"

    def test_union_all_chain(self):
        stmt = parse_statement("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
        assert isinstance(stmt, SetOperation) and stmt.op == "union"
        assert isinstance(stmt.left, SetOperation) and stmt.left.op == "union_all"

    def test_union_with_order_limit(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT b FROM u ORDER BY 1 LIMIT 3")
        assert isinstance(stmt, SetOperation)
        assert stmt.limit == 3 and len(stmt.order_by) == 1

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 1")
        assert stmt.from_clause is None


class TestOtherStatements:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ("a", "b") and len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM u")
        assert stmt.select is not None

    def test_insert_parenthesized_select(self):
        stmt = parse_statement("INSERT INTO t (SELECT * FROM u)")
        assert stmt.select is not None and stmt.columns is None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(stmt, UpdateStatement)
        assert [name for name, _ in stmt.assignments] == ["a", "b"]

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE x IS NULL")
        assert isinstance(stmt, DeleteStatement)

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT NOT NULL, s VARCHAR)"
        )
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.columns[0].primary_key and stmt.columns[0].not_null
        assert stmt.columns[1].not_null and not stmt.columns[1].primary_key

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (x INTEGER)")
        assert stmt.if_not_exists

    def test_create_table_as(self):
        stmt = parse_statement("CREATE TABLE t AS SELECT 1 AS x")
        assert isinstance(stmt, CreateTableAsStatement)

    def test_drop(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTableStatement) and stmt.if_exists

    def test_truncate(self):
        stmt = parse_statement("TRUNCATE TABLE t")
        assert isinstance(stmt, TruncateStatement)

    def test_script(self):
        statements = parse_statements("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1);")
        assert len(statements) == 2


class TestParameters:
    def test_binding(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?", params=(1, "x"))
        conjuncts = stmt.where
        assert conjuncts.left.right == Literal(1)
        assert conjuncts.right.right == Literal("x")

    def test_missing_params(self):
        with pytest.raises(SqlSyntaxError, match="no parameters"):
            parse_statement("SELECT ? ")

    def test_too_few_params(self):
        with pytest.raises(SqlSyntaxError, match="not enough parameters"):
            parse_statement("SELECT ?, ?", params=(1,))

    def test_unused_params_rejected(self):
        with pytest.raises(SqlSyntaxError, match="placeholders"):
            parse_statement("SELECT 1", params=(1,))


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_statement("SELECT 1 bogus extra")

    def test_incomplete_select(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT")

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError, match="expected a statement"):
            parse_statement("EXPLODE TABLE t")

    def test_join_missing_on(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM a JOIN b")

    def test_error_carries_position(self):
        try:
            parse_statement("SELECT 1 +")
        except SqlSyntaxError as exc:
            assert exc.line >= 1
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
