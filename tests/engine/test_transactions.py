"""Tests for engine transactions (snapshot/rollback semantics)."""

import pytest

from repro.engine import Database
from repro.errors import TransactionError


class TestLifecycle:
    def test_commit_keeps_changes(self, sample_table):
        sample_table.begin()
        sample_table.execute("DELETE FROM people WHERE id = 1")
        sample_table.commit()
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 4

    def test_rollback_restores_data(self, sample_table):
        sample_table.begin()
        sample_table.execute("DELETE FROM people")
        sample_table.rollback()
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_rollback_restores_updates(self, sample_table):
        before = sample_table.execute("SELECT SUM(age) FROM people").scalar()
        sample_table.begin()
        sample_table.execute("UPDATE people SET age = 0")
        sample_table.rollback()
        assert sample_table.execute("SELECT SUM(age) FROM people").scalar() == before

    def test_rollback_drops_created_tables(self, db):
        db.begin()
        db.execute("CREATE TABLE temp (x INTEGER)")
        db.rollback()
        assert not db.has_table("temp")

    def test_rollback_revives_dropped_tables(self, sample_table):
        sample_table.begin()
        sample_table.execute("DROP TABLE people")
        sample_table.rollback()
        assert sample_table.has_table("people")
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_version_restored_on_rollback(self, sample_table):
        table = sample_table.table("people")
        version = table.version
        sample_table.begin()
        sample_table.execute("DELETE FROM people WHERE id = 1")
        sample_table.rollback()
        assert table.version == version


class TestContextManager:
    def test_success_commits(self, sample_table):
        with sample_table.transaction():
            sample_table.execute("DELETE FROM people WHERE id = 5")
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 4

    def test_exception_rolls_back_and_reraises(self, sample_table):
        with pytest.raises(RuntimeError):
            with sample_table.transaction():
                sample_table.execute("DELETE FROM people")
                raise RuntimeError("boom")
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_in_transaction_flag(self, db):
        assert not db.in_transaction
        with db.transaction():
            assert db.in_transaction
        assert not db.in_transaction


class TestErrors:
    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError, match="already in progress"):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError, match="no transaction"):
            db.commit()

    def test_rollback_without_begin(self, db):
        with pytest.raises(TransactionError, match="no transaction"):
            db.rollback()
