"""Tests for schemas and record batches."""

import numpy as np
import pytest

from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import FLOAT, INTEGER, VARCHAR
from repro.errors import CatalogError, ExecutionError, TypeMismatchError


def make_schema() -> Schema:
    return Schema(
        [
            ColumnDef("id", INTEGER, nullable=False),
            ColumnDef("name", VARCHAR),
            ColumnDef("score", FLOAT),
        ]
    )


class TestSchema:
    def test_names_and_dtypes(self):
        s = make_schema()
        assert s.names() == ["id", "name", "score"]
        assert s.dtypes() == [INTEGER, VARCHAR, FLOAT]

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            Schema([ColumnDef("x", INTEGER), ColumnDef("x", FLOAT)])

    def test_duplicate_bare_names_ok_across_qualifiers(self):
        s = Schema(
            [
                ColumnDef("id", INTEGER, qualifier="a"),
                ColumnDef("id", INTEGER, qualifier="b"),
            ]
        )
        assert s.index_of("id", "a") == 0
        assert s.index_of("id", "b") == 1

    def test_unqualified_lookup_ambiguous(self):
        s = Schema(
            [
                ColumnDef("id", INTEGER, qualifier="a"),
                ColumnDef("id", INTEGER, qualifier="b"),
            ]
        )
        with pytest.raises(CatalogError, match="ambiguous"):
            s.index_of("id")

    def test_unknown_column(self):
        with pytest.raises(CatalogError, match="unknown column"):
            make_schema().index_of("missing")

    def test_with_qualifier_and_unqualified(self):
        s = make_schema().with_qualifier("t")
        assert s.column("id", "t").qualified_name == "t.id"
        assert s.unqualified().column("id").qualified_name == "id"

    def test_concat_and_project(self):
        s = make_schema()
        both = s.with_qualifier("a").concat(s.with_qualifier("b"))
        assert len(both) == 6
        sub = both.project([0, 3])
        assert [c.qualified_name for c in sub] == ["a.id", "b.id"]

    def test_union_compatibility(self):
        s = make_schema()
        renamed = Schema(
            [ColumnDef("x", INTEGER), ColumnDef("y", VARCHAR), ColumnDef("z", FLOAT)]
        )
        assert s.union_compatible_with(renamed)
        assert not s.union_compatible_with(s.project([0, 1]))
        flipped = Schema(
            [ColumnDef("x", VARCHAR), ColumnDef("y", INTEGER), ColumnDef("z", FLOAT)]
        )
        assert not s.union_compatible_with(flipped)


class TestRecordBatch:
    def test_from_rows_roundtrip(self):
        batch = RecordBatch.from_rows(
            make_schema(), [(1, "a", 1.5), (2, None, None)]
        )
        assert batch.to_rows() == [(1, "a", 1.5), (2, None, None)]
        assert batch.num_rows == 2

    def test_ragged_row_rejected(self):
        with pytest.raises(TypeMismatchError):
            RecordBatch.from_rows(make_schema(), [(1, "a")])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TypeMismatchError, match="ragged"):
            RecordBatch(
                Schema([ColumnDef("a", INTEGER), ColumnDef("b", INTEGER)]),
                [Column.from_values(INTEGER, [1]), Column.from_values(INTEGER, [1, 2])],
            )

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(TypeMismatchError, match="declared"):
            RecordBatch(
                Schema([ColumnDef("a", INTEGER)]),
                [Column.from_values(FLOAT, [1.0])],
            )

    def test_take_filter_slice(self):
        batch = RecordBatch.from_rows(
            make_schema(), [(i, str(i), float(i)) for i in range(5)]
        )
        assert batch.take(np.array([4, 0])).to_rows()[0][0] == 4
        assert batch.filter(np.array([True, False, False, False, True])).num_rows == 2
        assert batch.slice(1, 3).to_rows() == [(1, "1", 1.0), (2, "2", 2.0)]
        assert batch.slice(4, 99).num_rows == 1

    def test_select_columns(self):
        batch = RecordBatch.from_rows(make_schema(), [(1, "a", 2.0)])
        sub = batch.select([2, 0])
        assert sub.schema.names() == ["score", "id"]
        assert sub.to_rows() == [(2.0, 1)]

    def test_concat(self):
        a = RecordBatch.from_rows(make_schema(), [(1, "a", 1.0)])
        b = RecordBatch.from_rows(make_schema(), [(2, "b", 2.0)])
        merged = RecordBatch.concat([a, b])
        assert merged.num_rows == 2

    def test_concat_incompatible(self):
        a = RecordBatch.from_rows(make_schema(), [(1, "a", 1.0)])
        b = a.select([0])
        with pytest.raises(TypeMismatchError):
            RecordBatch.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(ExecutionError):
            RecordBatch.concat([])

    def test_to_pydict(self):
        batch = RecordBatch.from_rows(make_schema(), [(1, "a", 1.0)])
        assert batch.to_pydict() == {"id": [1], "name": ["a"], "score": [1.0]}

    def test_to_pydict_duplicate_names_raises(self):
        s = Schema(
            [
                ColumnDef("id", INTEGER, qualifier="a"),
                ColumnDef("id", INTEGER, qualifier="b"),
            ]
        )
        batch = RecordBatch.from_rows(s, [(1, 2)])
        with pytest.raises(ExecutionError):
            batch.to_pydict()

    def test_append_column(self):
        batch = RecordBatch.from_rows(make_schema(), [(1, "a", 1.0)])
        extended = batch.append_column(
            ColumnDef("extra", INTEGER), Column.from_values(INTEGER, [9])
        )
        assert extended.schema.names()[-1] == "extra"
        assert extended.to_rows() == [(1, "a", 1.0, 9)]

    def test_empty_batch(self):
        batch = RecordBatch.empty(make_schema())
        assert batch.num_rows == 0
        assert batch.to_rows() == []
