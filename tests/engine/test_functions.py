"""Tests for built-in scalar functions and scalar UDFs."""

import pytest

from repro.engine import Database
from repro.engine.column import Column
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR
from repro.errors import TypeMismatchError, UdfError


class TestNumericBuiltins:
    def test_abs_sign(self, db):
        assert db.execute("SELECT ABS(-3)").scalar() == 3
        assert db.execute("SELECT SIGN(-2.5)").scalar() == -1

    def test_sqrt_power_exp_ln(self, db):
        assert db.execute("SELECT SQRT(9.0)").scalar() == 3.0
        assert db.execute("SELECT POWER(2, 10)").scalar() == 1024.0
        assert db.execute("SELECT EXP(0.0)").scalar() == 1.0
        assert db.execute("SELECT LN(1.0)").scalar() == 0.0
        assert db.execute("SELECT LOG(100.0)").scalar() == pytest.approx(2.0)

    def test_floor_ceil_round(self, db):
        assert db.execute("SELECT FLOOR(2.7)").scalar() == 2
        assert db.execute("SELECT CEIL(2.1)").scalar() == 3
        assert db.execute("SELECT ROUND(2.567, 2)").scalar() == pytest.approx(2.57)
        assert db.execute("SELECT ROUND(2.5)").scalar() == 2.0  # banker's rounding

    def test_mod(self, db):
        assert db.execute("SELECT MOD(10, 3)").scalar() == 1
        assert db.execute("SELECT MOD(10, 0)").scalar() is None

    def test_least_greatest(self, db):
        assert db.execute("SELECT LEAST(3, 1, 2)").scalar() == 1
        assert db.execute("SELECT GREATEST(3, 1, 2)").scalar() == 3
        assert db.execute("SELECT LEAST(1, 2.5)").scalar() == 1.0

    def test_null_propagation(self, db):
        assert db.execute("SELECT ABS(NULL + 1)").scalar() is None


class TestStringBuiltins:
    def test_length_case(self, db):
        assert db.execute("SELECT LENGTH('hello')").scalar() == 5
        assert db.execute("SELECT UPPER('abc')").scalar() == "ABC"
        assert db.execute("SELECT LOWER('ABC')").scalar() == "abc"
        assert db.execute("SELECT TRIM('  x  ')").scalar() == "x"

    def test_substr_is_one_based(self, db):
        assert db.execute("SELECT SUBSTR('vertexica', 1, 6)").scalar() == "vertex"
        assert db.execute("SELECT SUBSTR('vertexica', 7)").scalar() == "ica"

    def test_concat_and_replace(self, db):
        assert db.execute("SELECT CONCAT('a', 'b', 'c')").scalar() == "abc"
        assert db.execute("SELECT REPLACE('aaa', 'a', 'b')").scalar() == "bbb"

    def test_type_errors(self, db):
        with pytest.raises(TypeMismatchError):
            db.execute("SELECT LENGTH(5)")


class TestNullHandling:
    def test_coalesce(self, db):
        assert db.execute("SELECT COALESCE(NULL, NULL, 7)").scalar() == 7
        assert db.execute("SELECT COALESCE(NULL, 'x')").scalar() == "x"

    def test_coalesce_widens(self, db):
        assert db.execute("SELECT COALESCE(NULL, 1, 2.5)").scalar() == 1.0

    def test_nullif(self, db):
        assert db.execute("SELECT NULLIF(3, 3)").scalar() is None
        assert db.execute("SELECT NULLIF(3, 4)").scalar() == 3


class TestScalarUdfs:
    def test_rowwise_udf(self, db):
        db.register_function("plus_one", lambda x: x + 1, [INTEGER], INTEGER)
        assert db.execute("SELECT PLUS_ONE(41)").scalar() == 42

    def test_udf_strict_null_handling(self, db):
        db.register_function("double_it", lambda x: x * 2, [FLOAT], FLOAT)
        assert db.execute("SELECT DOUBLE_IT(NULL + 1.0)").scalar() is None

    def test_udf_non_strict(self, db):
        db.register_function(
            "or_zero", lambda x: 0 if x is None else x, [INTEGER], INTEGER, strict=False
        )
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (NULL), (5)")
        assert db.execute("SELECT SUM(OR_ZERO(x)) FROM t").scalar() == 5

    def test_udf_arity_checked(self, db):
        db.register_function("f", lambda x: x, [INTEGER], INTEGER)
        with pytest.raises(UdfError, match="expects 1 arguments"):
            db.execute("SELECT F(1, 2)")

    def test_udf_arg_type_checked(self, db):
        db.register_function("f", lambda x: x, [INTEGER], INTEGER)
        with pytest.raises(UdfError, match="does not match"):
            db.execute("SELECT F('text')")

    def test_udf_int_widens_to_float_arg(self, db):
        db.register_function("half", lambda x: x / 2, [FLOAT], FLOAT)
        assert db.execute("SELECT HALF(5)").scalar() == 2.5

    def test_udf_cannot_shadow_builtin(self, db):
        with pytest.raises(UdfError, match="shadow"):
            db.register_function("abs", lambda x: x, [INTEGER], INTEGER)
        with pytest.raises(UdfError, match="shadow"):
            db.register_function("sum", lambda x: x, [INTEGER], INTEGER)

    def test_udf_exception_wrapped(self, db):
        db.register_function("bad", lambda x: 1 / 0, [INTEGER], FLOAT)
        with pytest.raises(UdfError, match="failed on row"):
            db.execute("SELECT BAD(1)")

    def test_vectorized_udf(self, db):
        def vec_double(col: Column) -> Column:
            return Column(FLOAT, col.values * 2, col.valid.copy())

        db.register_function(
            "vdouble", vec_double, [FLOAT], FLOAT, vectorized=True
        )
        db.execute("CREATE TABLE t (x FLOAT)")
        db.execute("INSERT INTO t VALUES (1.5), (2.5)")
        assert db.execute("SELECT SUM(VDOUBLE(x)) FROM t").scalar() == 8.0

    def test_vectorized_udf_bad_return_type(self, db):
        db.register_function(
            "vbad",
            lambda col: Column(INTEGER, col.values.astype("int64"), col.valid.copy()),
            [FLOAT],
            FLOAT,
            vectorized=True,
        )
        with pytest.raises(UdfError, match="returned"):
            db.execute("SELECT VBAD(1.0)")

    def test_unknown_function(self, db):
        with pytest.raises(TypeMismatchError, match="unknown function"):
            db.execute("SELECT NO_SUCH_FN(1)")

    def test_udf_in_where_clause(self, sample_table):
        sample_table.register_function(
            "is_senior", lambda age: age > 30, [INTEGER], BOOLEAN
        )
        rows = sample_table.execute(
            "SELECT name FROM people WHERE IS_SENIOR(age) ORDER BY name"
        ).rows()
        assert rows == [("alice",), ("carol",)]
