"""Tests for null-aware columnar storage."""

import numpy as np
import pytest

from repro.engine.column import Column, concat_columns
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR
from repro.errors import TypeMismatchError


class TestConstruction:
    def test_from_values_with_nulls(self):
        col = Column.from_values(INTEGER, [1, None, 3])
        assert col.to_list() == [1, None, 3]
        assert col.null_count() == 1
        assert col.has_nulls()

    def test_from_values_validates_types(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(INTEGER, [1, "two"])

    def test_empty(self):
        col = Column.empty(VARCHAR)
        assert len(col) == 0
        assert col.to_list() == []

    def test_constant_value(self):
        col = Column.constant(FLOAT, 2.5, 4)
        assert col.to_list() == [2.5] * 4

    def test_constant_null(self):
        col = Column.constant(VARCHAR, None, 3)
        assert col.to_list() == [None] * 3
        assert col.null_count() == 3

    def test_from_numpy_normalizes_width(self):
        col = Column.from_numpy(INTEGER, np.array([1, 2], dtype=np.int32))
        assert col.values.dtype == np.int64

    def test_length_mismatch_raises(self):
        with pytest.raises(TypeMismatchError):
            Column(INTEGER, np.array([1, 2]), np.array([True]))

    def test_value_at(self):
        col = Column.from_values(VARCHAR, ["a", None])
        assert col.value_at(0) == "a"
        assert col.value_at(1) is None


class TestTransforms:
    def test_take(self):
        col = Column.from_values(INTEGER, [10, 20, 30, None])
        taken = col.take(np.array([3, 0, 0]))
        assert taken.to_list() == [None, 10, 10]

    def test_filter(self):
        col = Column.from_values(FLOAT, [1.0, 2.0, 3.0])
        kept = col.filter(np.array([True, False, True]))
        assert kept.to_list() == [1.0, 3.0]

    def test_python_values_are_native(self):
        col = Column.from_values(INTEGER, [5])
        assert type(col.to_list()[0]) is int
        bcol = Column.from_values(BOOLEAN, [True])
        assert type(bcol.to_list()[0]) is bool


class TestCast:
    def test_int_to_float(self):
        col = Column.from_values(INTEGER, [1, None]).cast(FLOAT)
        assert col.dtype is FLOAT
        assert col.to_list() == [1.0, None]

    def test_float_to_int_truncates(self):
        col = Column.from_values(FLOAT, [2.9, -2.9]).cast(INTEGER)
        assert col.to_list() == [2, -2]

    def test_to_varchar_rendering(self):
        assert Column.from_values(INTEGER, [7]).cast(VARCHAR).to_list() == ["7"]
        assert Column.from_values(BOOLEAN, [True]).cast(VARCHAR).to_list() == ["true"]

    def test_varchar_to_numeric_parses(self):
        col = Column.from_values(VARCHAR, ["42", None]).cast(INTEGER)
        assert col.to_list() == [42, None]

    def test_varchar_garbage_raises(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(VARCHAR, ["pear"]).cast(FLOAT)

    def test_identity_cast_is_same_object(self):
        col = Column.from_values(INTEGER, [1])
        assert col.cast(INTEGER) is col

    def test_unsupported_cast_raises(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(FLOAT, [1.0]).cast(BOOLEAN)


class TestEquality:
    def test_equals_ignores_filler_under_null(self):
        a = Column(INTEGER, np.array([1, 99]), np.array([True, False]))
        b = Column(INTEGER, np.array([1, -7]), np.array([True, False]))
        assert a.equals(b)

    def test_not_equal_on_values(self):
        a = Column.from_values(INTEGER, [1, 2])
        b = Column.from_values(INTEGER, [1, 3])
        assert not a.equals(b)

    def test_not_equal_on_null_positions(self):
        a = Column.from_values(INTEGER, [1, None])
        b = Column.from_values(INTEGER, [None, 1])
        assert not a.equals(b)

    def test_not_equal_across_types(self):
        a = Column.from_values(INTEGER, [1])
        b = Column.from_values(FLOAT, [1.0])
        assert not a.equals(b)


class TestConcat:
    def test_concat_preserves_nulls(self):
        a = Column.from_values(INTEGER, [1, None])
        b = Column.from_values(INTEGER, [3])
        merged = concat_columns([a, b])
        assert merged.to_list() == [1, None, 3]

    def test_concat_single_is_identity(self):
        a = Column.from_values(VARCHAR, ["x"])
        assert concat_columns([a]) is a

    def test_concat_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            concat_columns(
                [Column.from_values(INTEGER, [1]), Column.from_values(FLOAT, [1.0])]
            )

    def test_concat_empty_list_raises(self):
        with pytest.raises(TypeMismatchError):
            concat_columns([])

    def test_concat_empty_varchar_columns(self):
        merged = concat_columns([Column.empty(VARCHAR), Column.empty(VARCHAR)])
        assert len(merged) == 0
        assert merged.dtype is VARCHAR
