"""Tests for EXPLAIN and EXPLAIN ANALYZE."""

import pytest

from repro.errors import SqlSyntaxError


class TestExplain:
    def test_tree_shape(self, sample_table):
        plan = sample_table.explain(
            "SELECT name FROM people WHERE age > 30 ORDER BY name LIMIT 2"
        )
        lines = plan.splitlines()
        assert "Limit" in lines[0]
        assert any("Sort" in line for line in lines)
        assert any("Filter" in line for line in lines)
        assert "TableScan(people" in lines[-1]

    def test_join_plan_shows_hash_join(self, sample_table):
        plan = sample_table.explain(
            "SELECT a.name FROM people a JOIN people b ON a.id = b.id"
        )
        assert "HashJoin(inner" in plan

    def test_explain_rejects_dml(self, sample_table):
        with pytest.raises(SqlSyntaxError):
            sample_table.explain("DELETE FROM people")


class TestExplainAnalyze:
    def test_returns_result_and_annotations(self, sample_table):
        result, text = sample_table.explain_analyze(
            "SELECT COUNT(*) FROM people WHERE age IS NOT NULL"
        )
        assert result.scalar() == 4
        assert "rows=" in text and "time=" in text and "ms" in text

    def test_row_counts_per_operator(self, sample_table):
        _, text = sample_table.explain_analyze(
            "SELECT name FROM people WHERE age > 30"
        )
        scan_line = [l for l in text.splitlines() if "TableScan" in l][0]
        filter_line = [l for l in text.splitlines() if "Filter" in l][0]
        assert "rows=5" in scan_line
        assert "rows=2" in filter_line

    def test_rejects_dml(self, sample_table):
        with pytest.raises(SqlSyntaxError):
            sample_table.explain_analyze("TRUNCATE TABLE people")
