"""Predicate pushdown: plan shapes and pushed-vs-unpushed parity.

The planner sinks WHERE conjuncts beneath joins, unions, aliases, and
projections toward the scans (``Planner._sink_conjuncts``).  These tests
pin the plan *shapes* via EXPLAIN — which side of a join a conjunct lands
on, what a LEFT JOIN protects, how union conjuncts are rewritten
positionally — and then hammer on the only invariant that matters:
pushed and unpushed plans must return bit-identical batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.types import FLOAT, INTEGER, VARCHAR
from repro.errors import EngineError


@pytest.fixture
def joined_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t1 (a INTEGER, b INTEGER)")
    db.execute("CREATE TABLE t2 (a INTEGER, c INTEGER)")
    db.execute("INSERT INTO t1 VALUES (1, 2), (3, 4), (5, 0)")
    db.execute("INSERT INTO t2 VALUES (1, 5), (3, 6), (7, 1)")
    return db


def _filter_depths(plan: str) -> list[int]:
    """Indent depth of every Filter line (tree depth in EXPLAIN output)."""
    return [
        (len(line) - len(line.lstrip())) // 2
        for line in plan.splitlines()
        if line.lstrip().startswith("Filter")
    ]


def _join_depth(plan: str) -> int:
    (line,) = [l for l in plan.splitlines() if "Join" in l]
    return (len(line) - len(line.lstrip())) // 2


class TestPlanShapes:
    def test_conjuncts_split_across_inner_join(self, joined_db):
        plan = joined_db.explain(
            "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a "
            "WHERE t1.b > 1 AND t2.c < 9"
        )
        # Both conjuncts sank beneath the join, one per side; nothing left
        # above it.
        assert all(d > _join_depth(plan) for d in _filter_depths(plan))
        assert len(_filter_depths(plan)) == 2
        assert "residual=False" in plan

    def test_pushdown_off_keeps_filter_above_join(self, joined_db):
        joined_db.pushdown = False
        plan = joined_db.explain(
            "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a "
            "WHERE t1.b > 1 AND t2.c < 9"
        )
        depths = _filter_depths(plan)
        assert len(depths) == 1 and depths[0] < _join_depth(plan)

    def test_left_join_protects_right_side(self, joined_db):
        plan = joined_db.explain(
            "SELECT t1.a FROM t1 LEFT JOIN t2 ON t1.a = t2.a "
            "WHERE t1.b > 1 AND t2.c < 9"
        )
        # The t1 conjunct sinks; the t2 conjunct must stay above the join
        # (filtering the right side would turn NULL-padded rows into drops).
        depths = _filter_depths(plan)
        join = _join_depth(plan)
        assert sorted(d > join for d in depths) == [False, True]

    def test_union_conjunct_rewritten_per_child(self, joined_db):
        plan = joined_db.explain(
            "SELECT * FROM (SELECT a, b FROM t1 UNION ALL SELECT a, c FROM t2) u "
            "WHERE u.b > 2"
        )
        # Copied into both children with the ref rewritten positionally:
        # column 2 is b in the first child, c in the second.
        assert "UnionAll" in plan
        assert "name='b'" in plan and "name='c'" in plan
        assert len(_filter_depths(plan)) == 2

    def test_alias_stripped_on_the_way_down(self, joined_db):
        plan = joined_db.explain("SELECT x.b FROM t1 AS x WHERE x.b > 1")
        lines = plan.splitlines()
        # Filter landed right on the (aliased) scan.
        assert lines[-2].lstrip().startswith("Filter")
        assert "TableScan(t1 AS x" in lines[-1]

    def test_derived_table_alias_is_transparent(self, joined_db):
        plan = joined_db.explain(
            "SELECT x.b FROM (SELECT b FROM t1) x WHERE x.b > 1"
        )
        lines = plan.splitlines()
        assert any(l.lstrip().startswith("Alias") for l in lines)
        # The conjunct crossed the Alias and the inner projection down to
        # the scan.
        assert lines[-2].lstrip().startswith("Filter")
        assert "TableScan(t1" in lines[-1]

    def test_projection_substitutes_output_expressions(self, joined_db):
        plan = joined_db.explain(
            "SELECT * FROM (SELECT a, b * 2 AS d FROM t1) s WHERE s.d > 4"
        )
        # The conjunct crossed the projection with d := b * 2 substituted,
        # so the filter sits on the scan and mentions b, not d.
        lines = plan.splitlines()
        assert lines[-2].lstrip().startswith("Filter")
        assert "name='b'" in lines[-2] and "name='d'" not in lines[-2]

    def test_ambiguous_conjunct_still_errors(self, joined_db):
        # `a` resolves on both join sides; the unpushed plan raises an
        # ambiguity error and pushdown must preserve that, not pick a side.
        sql = "SELECT t1.b FROM t1 JOIN t2 ON t1.b = t2.c WHERE a = 1"
        with pytest.raises(EngineError, match="[Aa]mbiguous"):
            joined_db.query_batch(sql)
        joined_db.pushdown = False
        with pytest.raises(EngineError, match="[Aa]mbiguous"):
            joined_db.query_batch(sql)

    def test_aggregate_blocks_sinking(self, joined_db):
        plan = joined_db.explain(
            "SELECT * FROM (SELECT a, COUNT(*) AS n FROM t1 GROUP BY a) g "
            "WHERE g.n > 0"
        )
        # HAVING-like predicates must stay above the aggregate.
        agg_line = [l for l in plan.splitlines() if "Aggregate" in l][0]
        agg_depth = (len(agg_line) - len(agg_line.lstrip())) // 2
        assert all(d < agg_depth for d in _filter_depths(plan))


PARITY_QUERIES = [
    "SELECT * FROM r WHERE k > 5 AND v < 0.5",
    "SELECT r.k, s.w FROM r JOIN s ON r.k = s.k WHERE r.v > 0.2 AND s.w < 40",
    "SELECT r.k FROM r LEFT JOIN s ON r.k = s.k WHERE r.tag LIKE 'a%'",
    "SELECT r.k, s.k FROM r JOIN s ON r.k = s.k "
    "WHERE r.k IN (1, 2, 3, 5, 8) AND s.w BETWEEN 10 AND 60",
    "SELECT * FROM (SELECT k, v FROM r UNION ALL SELECT k, w FROM s) u "
    "WHERE u.v > 0.4 ORDER BY u.k, u.v",
    "SELECT x.k, x.d FROM (SELECT k, v * 10 AS d FROM r) x WHERE x.d > 3",
    "SELECT DISTINCT r.tag FROM r JOIN s ON r.k = s.k WHERE s.w > 20",
    "SELECT a.k, b.k FROM r AS a JOIN r AS b ON a.k = b.k WHERE a.v > 0.5",
    "SELECT COUNT(*) FROM r JOIN s ON r.k = s.k WHERE r.v + s.w > 10",
    "SELECT r.k FROM r CROSS JOIN s WHERE r.k = 2 AND s.w > 30",
]


def _random_tables(db: Database, seed: int) -> None:
    rng = np.random.default_rng(seed)
    n, m = int(rng.integers(20, 60)), int(rng.integers(20, 60))
    db.execute("CREATE TABLE r (k INTEGER, v FLOAT, tag VARCHAR)")
    db.execute("CREATE TABLE s (k INTEGER, w FLOAT)")
    tags = np.array(["ant", "bee", "cat", "auk"], dtype=object)
    db.insert_batch(
        "r",
        RecordBatch(
            db.table("r").schema,
            [
                Column.from_numpy(INTEGER, rng.integers(0, 12, n)),
                Column.from_numpy(FLOAT, np.round(rng.random(n), 3)),
                Column.from_numpy(VARCHAR, tags[rng.integers(0, len(tags), n)]),
            ],
        ),
    )
    db.insert_batch(
        "s",
        RecordBatch(
            db.table("s").schema,
            [
                Column.from_numpy(INTEGER, rng.integers(0, 12, m)),
                Column.from_numpy(FLOAT, np.round(rng.random(m) * 80, 3)),
            ],
        ),
    )


class TestPushdownParity:
    """Pushed and unpushed plans must return bit-identical batches."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_bit_identical_results(self, seed, sql):
        db = Database()
        _random_tables(db, seed)
        db.pushdown = True
        pushed = db.query_batch(sql)
        db.pushdown = False
        plain = db.query_batch(sql)
        assert pushed.schema.names() == plain.schema.names()
        assert pushed.num_rows == plain.num_rows
        for name in pushed.schema.names():
            a, b = pushed.column(name).values, plain.column(name).values
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), f"{name} differs for {sql!r}"
