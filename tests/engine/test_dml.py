"""Tests for INSERT / UPDATE / DELETE / DDL execution."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, ConstraintError, TypeMismatchError


class TestInsert:
    def test_values_multiple_rows(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.row_count == 2
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_column_list_pads_missing_with_null(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR, c FLOAT)")
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)")
        assert db.execute("SELECT a, b, c FROM t").rows() == [(7, None, 1.5)]

    def test_unknown_column_rejected(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError, match="unknown column"):
            db.execute("INSERT INTO t (nope) VALUES (1)")

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_int_widens_into_float_column(self, db):
        db.execute("CREATE TABLE t (x FLOAT)")
        db.execute("INSERT INTO t VALUES (3)")
        assert db.execute("SELECT x FROM t").scalar() == 3.0

    def test_type_mismatch_rejected(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t VALUES ('text')")

    def test_insert_from_select(self, db):
        db.execute("CREATE TABLE src (x INTEGER)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        db.execute("CREATE TABLE dst (x INTEGER)")
        result = db.execute("INSERT INTO dst SELECT x * 10 FROM src WHERE x > 1")
        assert result.row_count == 2
        assert db.execute("SELECT SUM(x) FROM dst").scalar() == 50

    def test_insert_expression_values(self, db):
        db.execute("CREATE TABLE t (x FLOAT)")
        db.execute("INSERT INTO t VALUES (SQRT(16.0))")
        assert db.execute("SELECT x FROM t").scalar() == 4.0

    def test_constraint_violation_leaves_table_unchanged(self, db):
        db.execute("CREATE TABLE t (x INTEGER NOT NULL)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (NULL)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


class TestUpdate:
    def test_update_with_where(self, sample_table):
        result = sample_table.execute("UPDATE people SET age = age + 1 WHERE age = 28")
        assert result.row_count == 2
        assert sample_table.execute(
            "SELECT COUNT(*) FROM people WHERE age = 29"
        ).scalar() == 2

    def test_update_all_rows(self, sample_table):
        assert sample_table.execute("UPDATE people SET score = 0.0").row_count == 5

    def test_update_to_null(self, sample_table):
        sample_table.execute("UPDATE people SET score = NULL WHERE id = 1")
        assert sample_table.execute(
            "SELECT score FROM people WHERE id = 1"
        ).scalar() is None

    def test_update_type_checked(self, sample_table):
        with pytest.raises(TypeMismatchError):
            sample_table.execute("UPDATE people SET age = 'old'")

    def test_update_int_into_float(self, sample_table):
        sample_table.execute("UPDATE people SET score = 5 WHERE id = 2")
        assert sample_table.execute(
            "SELECT score FROM people WHERE id = 2"
        ).scalar() == 5.0

    def test_update_uses_old_values_consistently(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("UPDATE t SET a = b, b = a")
        assert db.execute("SELECT a, b FROM t").rows() == [(10, 1)]


class TestDelete:
    def test_delete_with_where(self, sample_table):
        assert sample_table.execute("DELETE FROM people WHERE age IS NULL").row_count == 1
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 4

    def test_delete_all(self, sample_table):
        assert sample_table.execute("DELETE FROM people").row_count == 5
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 0


class TestDdl:
    def test_create_drop(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        assert db.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.has_table("t")

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(CatalogError, match="already exists"):
            db.execute("CREATE TABLE t (x INTEGER)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS t (x INTEGER)")  # no error

    def test_drop_missing_rejected_unless_if_exists(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")
        db.execute("DROP TABLE IF EXISTS ghost")  # no error

    def test_ctas(self, sample_table):
        result = sample_table.execute(
            "CREATE TABLE adults AS SELECT id, name FROM people WHERE age > 30"
        )
        assert result.row_count == 2
        assert sample_table.execute("SELECT COUNT(*) FROM adults").scalar() == 2

    def test_ctas_duplicate_names_uniquified(self, sample_table):
        # Colliding output names are disambiguated positionally (DuckDB
        # style), so CTAS over a star-join still produces a legal table.
        sample_table.execute(
            "CREATE TABLE pairs AS SELECT a.id, b.id "
            "FROM people a JOIN people b ON a.id = b.id"
        )
        names = sample_table.table("pairs").schema.names()
        assert names == ["id", "id_1"]

    def test_truncate(self, sample_table):
        result = sample_table.execute("TRUNCATE TABLE people")
        assert result.row_count == 5
        assert sample_table.execute("SELECT COUNT(*) FROM people").scalar() == 0

    def test_multiple_primary_keys_rejected(self, db):
        with pytest.raises(CatalogError, match="multiple PRIMARY KEY"):
            db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)")

    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (2); "
            "SELECT SUM(x) FROM t"
        )
        assert results[-1].scalar() == 3
