"""Snapshot pinning: stability under DML, loud invalidation on
wholesale operations, and the non-arming read-only version API."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.errors import CatalogError, SnapshotInvalid
from repro.serving.snapshot import Snapshot, snapshot_key

from serving_helpers import rows_of


@pytest.fixture
def kv_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
    return db


class TestPinning:
    def test_pinned_data_survives_live_dml(self, kv_db):
        snap = Snapshot.pin(kv_db, ["kv"])
        kv_db.execute("INSERT INTO kv VALUES (3, 30)")
        kv_db.execute("UPDATE kv SET v = 99 WHERE id = 1")
        kv_db.execute("DELETE FROM kv WHERE id = 2")
        shadow = snap.reader()
        rows = rows_of(shadow.execute("SELECT id, v FROM kv ORDER BY id"))
        assert rows == [(1, 10), (2, 20)]
        # ... while the live table moved on
        live = rows_of(kv_db.execute("SELECT id, v FROM kv ORDER BY id"))
        assert live == [(1, 99), (3, 30)]

    def test_pin_is_zero_copy(self, kv_db):
        snap = Snapshot.pin(kv_db, ["kv"])
        assert snap.pins["kv"].batch is kv_db.catalog.get("kv").data()

    def test_pin_all_tables(self, kv_db):
        kv_db.execute("CREATE TABLE other (id INTEGER)")
        snap = Snapshot.pin(kv_db)
        assert set(snap.pins) == {"kv", "other"}

    def test_pin_unknown_table(self, kv_db):
        with pytest.raises(SnapshotInvalid):
            Snapshot.pin(kv_db, ["nope"])
        with pytest.raises(CatalogError):
            kv_db.pin_tables(["nope"])

    def test_key_is_sorted_and_version_sensitive(self, kv_db):
        key1 = Snapshot.pin(kv_db, ["kv"]).key()
        key1b = Snapshot.pin(kv_db, ["kv"]).key()
        assert key1 == key1b  # unchanged data, equal keys
        kv_db.execute("INSERT INTO kv VALUES (3, 30)")
        key2 = Snapshot.pin(kv_db, ["kv"]).key()
        assert key2 != key1
        assert snapshot_key(list(kv_db.pin_tables(["kv"]).values())) == key2

    def test_shadow_writes_do_not_touch_live(self, kv_db):
        snap = Snapshot.pin(kv_db, ["kv"])
        shadow = snap.reader()
        shadow.execute("INSERT INTO kv VALUES (7, 70)")
        shadow.execute("CREATE TABLE scratch (id INTEGER)")
        assert rows_of(kv_db.execute("SELECT id FROM kv ORDER BY id")) == [(1,), (2,)]
        assert not kv_db.has_table("scratch")
        # the pinned batch itself is untouched: a fresh shadow is pristine
        again = rows_of(snap.reader().execute("SELECT id, v FROM kv ORDER BY id"))
        assert again == [(1, 10), (2, 20)]


class TestHandleInvalidation:
    def test_live_read_while_current(self, kv_db):
        handle = Snapshot.pin(kv_db, ["kv"]).table("kv")
        assert handle.is_current()
        assert handle.live_data().num_rows == 2

    def test_dml_advance_fails_loudly(self, kv_db):
        handle = Snapshot.pin(kv_db, ["kv"]).table("kv")
        kv_db.execute("INSERT INTO kv VALUES (3, 30)")
        assert not handle.is_current()
        with pytest.raises(SnapshotInvalid, match="advanced from pinned version"):
            handle.live_data()

    def test_truncate_fails_loudly(self, kv_db):
        handle = Snapshot.pin(kv_db, ["kv"]).table("kv")
        kv_db.execute("TRUNCATE kv")
        with pytest.raises(SnapshotInvalid):
            handle.live_data()
        # pinned contents remain readable
        assert handle.data().num_rows == 2

    def test_drop_fails_loudly(self, kv_db):
        handle = Snapshot.pin(kv_db, ["kv"]).table("kv")
        kv_db.execute("DROP TABLE kv")
        assert not handle.is_current()
        with pytest.raises(SnapshotInvalid, match="dropped"):
            handle.live_data()

    def test_drop_and_recreate_fails_on_uid(self, kv_db):
        handle = Snapshot.pin(kv_db, ["kv"]).table("kv")
        pinned_version = handle.version
        kv_db.execute("DROP TABLE kv")
        kv_db.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)")
        kv_db.execute("INSERT INTO kv VALUES (1, 10)")
        # the recreated table may even reach the pinned version number;
        # the fresh uid is what must trip the check
        assert kv_db.catalog.get("kv").uid != handle.pin.uid
        with pytest.raises(SnapshotInvalid, match="replaced wholesale"):
            handle.live_data()
        assert handle.version == pinned_version

    def test_rollback_fails_on_uid(self, kv_db):
        kv_db.begin()
        kv_db.execute("INSERT INTO kv VALUES (3, 30)")
        handle = Snapshot.pin(kv_db, ["kv"]).table("kv")
        kv_db.rollback()
        with pytest.raises(SnapshotInvalid, match="replaced wholesale"):
            handle.live_data()

    def test_validate_covers_all_pins(self, kv_db):
        kv_db.execute("CREATE TABLE other (id INTEGER)")
        snap = Snapshot.pin(kv_db)
        snap.validate()
        kv_db.execute("INSERT INTO other VALUES (1)")
        with pytest.raises(SnapshotInvalid):
            snap.validate()
        snap.validate(["kv"])  # untouched table still validates

    def test_key_of_foreign_table_rejected(self, kv_db):
        snap = Snapshot.pin(kv_db, ["kv"])
        with pytest.raises(SnapshotInvalid):
            snap.key(["other"])


class TestVersionAPI:
    def test_current_versions_reports_all(self, kv_db):
        kv_db.execute("CREATE TABLE other (id INTEGER)")
        versions = kv_db.current_versions()
        assert set(versions) == {"kv", "other"}
        kv_db.execute("INSERT INTO kv VALUES (3, 30)")
        assert kv_db.current_versions(["kv"])["kv"] == versions["kv"] + 1

    def test_current_versions_does_not_arm_capture(self, kv_db):
        kv_db.current_versions()
        assert not kv_db.catalog.get("kv").changelog.enabled

    def test_table_state_arm_false(self, kv_db):
        state = kv_db.table_state("kv", arm=False)
        assert not kv_db.catalog.get("kv").changelog.enabled
        armed = kv_db.table_state("kv")
        assert kv_db.catalog.get("kv").changelog.enabled
        assert state == armed  # same (uid, version) bookmark either way

    def test_pin_does_not_arm_capture(self, kv_db):
        Snapshot.pin(kv_db, ["kv"])
        assert not kv_db.catalog.get("kv").changelog.enabled
