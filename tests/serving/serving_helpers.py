"""Shared helpers for the serving suite (imported as a plain module —
the test tree has no packages)."""

from __future__ import annotations


def rows_of(result) -> list[tuple]:
    """Canonical row tuples of a Result (bit-identical comparison)."""
    batch = result.batch
    if batch is None:
        return []
    cols = [batch.column(name) for name in batch.schema.names()]
    return [
        tuple(None if not c.valid[i] else c.values[i].item() for c in cols)
        for i in range(batch.num_rows)
    ]
