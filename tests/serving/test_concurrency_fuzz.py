"""Seeded concurrency fuzz: N async readers against a streaming writer.

The serving tier's whole claim is that concurrency changes *scheduling*,
never *answers*.  So the oracle is serial replay: a second database
applies the exact same seeded DML stream one statement at a time,
recording the query results after every statement, keyed by the table
version each statement produced.  Every concurrent read reports the
versions it was pinned at (``ServedResult.versions``) — its rows must be
bit-identical to the serial result at that version, whether it was a
cache hit or a fresh shadow execution.  A second pass re-reads every
observed version's query uncached and compares against the cached
answer (hit == miss, bit for bit).

Seeds come from ``SERVING_FUZZ_SEEDS`` (comma-separated ints) so CI can
widen the sweep without a code change.
"""

from __future__ import annotations

import asyncio
import os
import random

import numpy as np
import pytest

from repro.core import Vertexica
from repro.engine import Database
from repro.programs import PageRank
from serving_helpers import rows_of

SEEDS = [int(s) for s in os.environ.get("SERVING_FUZZ_SEEDS", "7,23").split(",")]

QUERIES = (
    "SELECT id, v FROM kv ORDER BY id",
    "SELECT COUNT(*) AS n, SUM(v) AS total FROM kv",
    "SELECT v, COUNT(*) AS n FROM kv GROUP BY v ORDER BY v",
)

SETUP = (
    "CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)",
    "INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)",
)


def _dml_stream(seed: int, n: int) -> list[str]:
    """A deterministic DML stream: inserts, updates, deletes."""
    rng = random.Random(seed)
    next_id = 100
    statements = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.5:
            statements.append(f"INSERT INTO kv VALUES ({next_id}, {rng.randrange(100)})")
            next_id += 1
        elif roll < 0.8:
            statements.append(
                f"UPDATE kv SET v = {rng.randrange(100)} "
                f"WHERE id = {rng.randrange(1, next_id)}"
            )
        else:
            statements.append(f"DELETE FROM kv WHERE id = {rng.randrange(1, next_id)}")
    return statements


def _golden_by_version(statements: list[str]) -> dict[int, dict[str, list[tuple]]]:
    """Serial replay: query results after every statement, keyed by the
    kv table version that statement produced (plus the initial state)."""
    db = Database()
    for stmt in SETUP:
        db.execute(stmt)
    golden = {}

    def record():
        version = db.current_versions(["kv"])["kv"]
        golden[version] = {q: rows_of(db.execute(q)) for q in QUERIES}

    record()
    for stmt in statements:
        db.execute(stmt)
        record()
    return golden


def _kv_version(served) -> int:
    [(name, _uid, version)] = [t for t in served.versions if t[0] == "kv"]
    return version


@pytest.mark.parametrize("seed", SEEDS)
async def test_concurrent_reads_match_serial_execution(seed):
    vx = Vertexica()
    for stmt in SETUP:
        vx.sql(stmt)
    statements = _dml_stream(seed, n=30)
    golden = _golden_by_version(statements)
    rng = random.Random(seed * 31 + 1)
    observations = []

    async with vx.serve(max_concurrency=6, max_queue=256) as service:
        stop = asyncio.Event()

        async def writer(session):
            for stmt in statements:
                await session.sql(stmt)
                if rng.random() < 0.3:
                    await asyncio.sleep(0)
            stop.set()

        async def reader(session, rdg: random.Random):
            while not stop.is_set():
                query = rdg.choice(QUERIES)
                served = await session.sql(query)
                observations.append((query, _kv_version(served),
                                     rows_of(served.value), served.from_cache))
                await asyncio.sleep(0)

        async with service.session(max_inflight=4) as wsession:
            readers = [service.session(max_inflight=2) for _ in range(4)]
            for r in readers:
                await r.__aenter__()
            try:
                await asyncio.gather(
                    writer(wsession),
                    *[reader(r, random.Random(seed * 1000 + i))
                      for i, r in enumerate(readers)],
                )
            finally:
                for r in readers:
                    await r.__aexit__(None, None, None)

        # Every concurrent read == serial execution at its pinned version.
        assert observations
        for query, version, rows, _hit in observations:
            assert version in golden, f"read pinned unknown version {version}"
            assert rows == golden[version][query], (
                f"seed {seed}: torn read at version {version} for {query!r}"
            )

        # Cache-hit answers == uncached recomputation at the final version.
        async with service.session() as s:
            for query in QUERIES:
                miss = await s.sql(query, cached=False)
                hit = await s.sql(query)  # populated by the reader storm
                assert rows_of(hit.value) == rows_of(miss.value)

        stats = service.stats()
        assert stats["cache"]["hits"] > 0, "fuzz never exercised the cache"
        assert stats["rejected"] == 0  # queue was sized to absorb the storm


@pytest.mark.parametrize("seed", SEEDS[:1])
async def test_concurrent_runs_match_serial_runs(seed):
    """Vertex-program runs served concurrently while edges stream in are
    bit-identical to serial runs at the same pinned edge-table version."""
    rng = random.Random(seed)
    src = [0, 0, 1, 2, 2, 3, 4]
    dst = [1, 2, 2, 0, 3, 4, 0]

    vx = Vertexica()
    vx.load_graph("g", src=np.array(src), dst=np.array(dst))
    golden_vx = Vertexica()
    golden_vx.load_graph("g", src=np.array(src), dst=np.array(dst))

    new_edges = [(rng.randrange(5), rng.randrange(5)) for _ in range(6)]
    program = PageRank(iterations=3)
    observations = []

    async with vx.serve(max_concurrency=4, max_queue=256) as service:
        stop = asyncio.Event()

        async def writer(session):
            for s_id, d_id in new_edges:
                await session.sql(f"INSERT INTO g_edge VALUES ({s_id}, {d_id}, 1.0)")
                await asyncio.sleep(0)
            stop.set()

        async def reader(session):
            while not stop.is_set():
                observations.append(await session.run("g", program))
                await asyncio.sleep(0)

        async with service.session() as wsession:
            async with service.session(max_inflight=2) as rsession:
                await asyncio.gather(writer(wsession), reader(rsession))

        # Serial oracle: replay the stream, snapshotting the run after
        # every prefix; concurrent results must match one prefix state.
        golden_values = [golden_vx.run("g", program).values]
        for s_id, d_id in new_edges:
            golden_vx.sql(f"INSERT INTO g_edge VALUES ({s_id}, {d_id}, 1.0)")
            golden_values.append(golden_vx.run("g", program).values)

        assert observations
        for result in observations:
            assert result.values in golden_values, (
                f"seed {seed}: concurrent run matches no serial prefix state"
            )

        # Warm repeat at the now-quiescent version: cached and identical.
        async with service.session() as s:
            warm1 = await s.run("g", program)
            warm2 = await s.run("g", program)
            assert warm2.stats.served_from_cache
            assert warm2.values == warm1.values == golden_values[-1]
