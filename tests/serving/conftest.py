"""Async test support for the serving suite.

The container has no pytest-asyncio plugin, so coroutine test functions
are executed here via a ``pytest_pyfunc_call`` hook: each ``async def``
test runs to completion on a fresh event loop (``asyncio.run``), which
also guarantees no loop state leaks between tests.
"""

from __future__ import annotations

import asyncio
import inspect

import numpy as np
import pytest

from repro.core import Vertexica


def pytest_pyfunc_call(pyfuncitem):
    fn = pyfuncitem.obj
    if inspect.iscoroutinefunction(fn):
        kwargs = {
            name: pyfuncitem.funcargs[name]
            for name in pyfuncitem._fixtureinfo.argnames
        }
        asyncio.run(fn(**kwargs))
        return True
    return None


@pytest.fixture
def served_vx(tiny_edges) -> Vertexica:
    """A Vertexica with the tiny 5-vertex graph loaded as ``g`` plus a
    small relational table for SQL-path tests."""
    src, dst = tiny_edges
    vx = Vertexica()
    vx.load_graph("g", src=np.array(src), dst=np.array(dst))
    vx.sql("CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)")
    vx.sql("INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)")
    return vx
