"""LatencyHistogram: quantiles stay within the observed range.

Regression coverage for the p50 > max bug: ``quantile`` used to return
the raw bucket upper bound, so a burst of very fast samples (everything
under the first 10 µs bound) reported p50 = 10 µs while max_s showed
2 µs — quantiles above the maximum in the same metrics dict.
"""

from __future__ import annotations

import random

from repro.serving.metrics import LatencyHistogram, ServingMetrics


class TestQuantileClamp:
    def test_fast_samples_do_not_exceed_max(self):
        h = LatencyHistogram()
        for _ in range(100):
            h.observe(2e-6)  # all faster than the first bucket bound
        assert h.max_seen == 2e-6
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) <= h.max_seen

    def test_overflow_bucket_reports_max(self):
        h = LatencyHistogram()
        h.observe(250.0)  # beyond the last finite bound
        assert h.quantile(0.99) == 250.0

    def test_quantiles_never_exceed_max_property(self):
        rng = random.Random(7)
        h = LatencyHistogram()
        for _ in range(500):
            h.observe(10 ** rng.uniform(-6, 2))
            for q in (0.5, 0.9, 0.95, 0.99, 1.0):
                assert 0.0 <= h.quantile(q) <= h.max_seen

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_as_dict_internally_consistent(self):
        h = LatencyHistogram()
        for s in (1e-6, 5e-6, 2e-3):
            h.observe(s)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["p50_s"] <= d["p95_s"] <= d["p99_s"] <= h.max_seen


class TestServingMetricsSummary:
    def test_summary_quantiles_bounded_by_max(self):
        m = ServingMetrics()
        m.enqueued()
        m.started(3e-6)
        m.finished(4e-6)
        summary = m.summary()
        assert summary["serve"]["p95_s"] <= summary["serve"]["max_s"]
        assert summary["wait"]["p95_s"] <= summary["wait"]["max_s"]
