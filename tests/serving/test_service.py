"""VertexicaService: session protocol, read/write routing, admission
control, cached runs with the ``served_from_cache`` marker, and metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import AdmissionError, ServingError
from repro.programs import PageRank

from serving_helpers import rows_of


class TestSqlRouting:
    async def test_select_is_snapshot_isolated_and_cached(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                r1 = await s.sql("SELECT id, v FROM kv ORDER BY id")
                assert not r1.from_cache
                assert rows_of(r1.value) == [(1, 10), (2, 20), (3, 30)]
                r2 = await s.sql("SELECT id, v FROM kv ORDER BY id")
                assert r2.from_cache
                assert rows_of(r2.value) == rows_of(r1.value)
                assert r2.versions == r1.versions
                assert s.cache_hits == 1 and s.requests == 2

    async def test_write_bypasses_cache_and_advances_versions(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                r1 = await s.sql("SELECT id, v FROM kv ORDER BY id")
                w = await s.sql("UPDATE kv SET v = 11 WHERE id = 1")
                assert not w.from_cache and w.versions == ()
                assert w.value.row_count == 1
                r2 = await s.sql("SELECT id, v FROM kv ORDER BY id")
                assert not r2.from_cache  # version advance = new key
                assert rows_of(r2.value)[0] == (1, 11)
                assert r2.versions != r1.versions
            assert service.metrics.writes == 1

    async def test_uncached_read_counts_as_bypass(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                await s.sql("SELECT COUNT(*) AS n FROM kv", cached=False)
                await s.sql("SELECT COUNT(*) AS n FROM kv", cached=False)
            assert service.metrics.bypassed == 2
            assert service.cache.stats.lookups == 0

    async def test_select_of_unknown_table_fails_loudly(self, served_vx):
        from repro.errors import SnapshotInvalid

        async with served_vx.serve() as service:
            async with service.session() as s:
                with pytest.raises(SnapshotInvalid):
                    await s.sql("SELECT * FROM missing")
            assert service.metrics.snapshot_invalid == 1

    async def test_repeatable_read_at_snapshot(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                snap = await s.snapshot(["kv"])
                await s.sql("DELETE FROM kv WHERE id = 2")
                pinned = await s.sql(
                    "SELECT id FROM kv ORDER BY id", at=snap, cached=False
                )
                assert rows_of(pinned.value) == [(1,), (2,), (3,)]
                live = await s.sql("SELECT id FROM kv ORDER BY id")
                assert rows_of(live.value) == [(1,), (3,)]
                with pytest.raises(ServingError):
                    await s.sql("DELETE FROM kv WHERE id = 3", at=snap)


class TestGraphServing:
    async def test_run_cache_hit_is_marked_and_identical(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                cold = await s.run("g", PageRank(iterations=3))
                assert not cold.stats.served_from_cache
                warm = await s.run("g", PageRank(iterations=3))
                assert warm.stats.served_from_cache
                assert all(ss.served_from_cache for ss in warm.stats.supersteps)
                assert "[served from cache]" in warm.stats.summary()
                assert warm.values == cold.values
                # a different program is a different key
                other = await s.run("g", PageRank(iterations=4))
                assert not other.stats.served_from_cache

    async def test_run_does_not_dirty_live_database(self, served_vx):
        before = set(served_vx.db.table_names())
        async with served_vx.serve() as service:
            async with service.session() as s:
                await s.run("g", PageRank(iterations=2))
        assert set(served_vx.db.table_names()) == before

    async def test_write_invalidates_run(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                cold = await s.run("g", PageRank(iterations=2))
                await s.sql("INSERT INTO g_edge VALUES (4, 1, 1.0)")
                recomputed = await s.run("g", PageRank(iterations=2))
                assert not recomputed.stats.served_from_cache
                assert recomputed.values != cold.values

    async def test_one_hop(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                r = await s.one_hop("g", 2)
                assert r.value == [0, 3]
                assert (await s.one_hop("g", 2)).from_cache
                assert (await s.one_hop("g", 0)).value == [1, 2]

    async def test_sql_graph_by_name(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                tri = await s.sql_graph("triangle_count_sql", "g")
                assert not tri.from_cache
                assert (await s.sql_graph("triangle_count_sql", "g")).from_cache
                with pytest.raises(ServingError, match="unknown sql_graph"):
                    await s.sql_graph("not_an_algorithm", "g")

    async def test_extract_view_cached_by_base_versions(self, served_vx):
        from repro import EdgeSpec, NodeSpec

        served_vx.create_graph_view(
            "kvview",
            vertices=NodeSpec("kv", key="id"),
            edges=EdgeSpec("g_edge", src="src", dst="dst"),
            materialized=False,
        )
        async with served_vx.serve() as service:
            async with service.session() as s:
                v1 = await s.extract_view("kvview")
                assert not v1.from_cache and v1.value["num_edges"] > 0
                assert (await s.extract_view("kvview")).from_cache
                await s.sql("INSERT INTO g_edge VALUES (1, 3, 1.0)")
                v2 = await s.extract_view("kvview")
                assert not v2.from_cache
                assert v2.value["num_edges"] == v1.value["num_edges"] + 1
        assert not served_vx.db.has_table("kvview_edge")  # shadow-only


class TestAdmissionAndSessions:
    async def test_queue_overflow_rejected_as_transient(self, served_vx):
        from repro.core import faults

        async with served_vx.serve(max_concurrency=1, max_queue=1) as service:
            async with service.session(max_inflight=16) as s:
                tasks = [
                    asyncio.create_task(
                        s.sql("SELECT COUNT(*) AS n FROM kv", cached=False)
                    )
                    for _ in range(8)
                ]
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            rejected = [o for o in outcomes if isinstance(o, AdmissionError)]
            served = [o for o in outcomes if not isinstance(o, Exception)]
            assert rejected and served
            assert all(faults.is_transient(r) for r in rejected)
            assert service.metrics.rejected == len(rejected)
            assert service.metrics.admitted == len(served)

    async def test_session_inflight_limits_concurrency(self, served_vx):
        async with served_vx.serve(max_concurrency=4, max_queue=64) as service:
            async with service.session(max_inflight=1) as s:
                await asyncio.gather(
                    *[s.sql("SELECT COUNT(*) AS n FROM kv") for _ in range(6)]
                )
            # one at a time through the session gate -> never parallel
            assert service.metrics.max_in_flight == 1

    async def test_closed_session_refuses(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                await s.sql("SELECT COUNT(*) AS n FROM kv")
            with pytest.raises(ServingError, match="session is closed"):
                await s.sql("SELECT COUNT(*) AS n FROM kv")

    async def test_closed_service_refuses(self, served_vx):
        service = served_vx.serve()
        service.close()
        async with service.session() as s:
            with pytest.raises(ServingError, match="service is closed"):
                await s.sql("SELECT COUNT(*) AS n FROM kv")

    async def test_metrics_summary_shape(self, served_vx):
        async with served_vx.serve() as service:
            async with service.session() as s:
                await s.sql("SELECT COUNT(*) AS n FROM kv")
                await s.sql("SELECT COUNT(*) AS n FROM kv")
            stats = service.stats()
        assert stats["admitted"] == 2
        assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1
        assert stats["wait"]["count"] == 2 and stats["serve"]["count"] == 2
        assert stats["serve"]["p95_s"] >= stats["serve"]["p50_s"] >= 0
        assert stats["queue_depth"] == 0 and stats["in_flight"] == 0
