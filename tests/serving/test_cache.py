"""ResultCache: version-addressed hits, LRU byte-budget eviction,
precise invalidation, and the stats counters the metrics layer surfaces."""

from __future__ import annotations

import numpy as np

from repro.serving.cache import ResultCache, estimate_nbytes, fingerprint_text


def _key(fingerprint: str, version: int):
    return (fingerprint, (("t", 1, version),))


class TestLookup:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get(_key("q", 1)) is None
        cache.put(_key("q", 1), [1, 2, 3])
        assert cache.get(_key("q", 1)) == [1, 2, 3]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_version_advance_changes_key(self):
        cache = ResultCache()
        cache.put(_key("q", 1), "old")
        assert cache.get(_key("q", 2)) is None  # write bumped the version
        cache.put(_key("q", 2), "new")
        assert cache.get(_key("q", 2)) == "new"
        assert cache.get(_key("q", 1)) == "old"  # pinned readers still hit

    def test_get_or_compute(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        value, hit = cache.get_or_compute(_key("q", 1), compute)
        assert (value, hit) == ("value", False)
        value, hit = cache.get_or_compute(_key("q", 1), compute)
        assert (value, hit) == ("value", True)
        assert len(calls) == 1

    def test_falsy_results_cache_as_hits(self):
        """Regression: ``get``/``get_or_compute`` used ``None`` as the
        miss sentinel, so legitimately falsy results — an empty SELECT, a
        0-count aggregate, ``None`` itself — were recomputed on every
        request.  A private miss sentinel makes them first-class hits."""
        for falsy in (None, [], 0, "", {}):
            cache = ResultCache()
            calls = []

            def compute():
                calls.append(1)
                return falsy

            value, hit = cache.get_or_compute(_key("q", 1), compute)
            assert (value, hit) == (falsy, False)
            value, hit = cache.get_or_compute(_key("q", 1), compute)
            assert (value, hit) == (falsy, True), f"falsy result {falsy!r} missed"
            assert len(calls) == 1
            assert cache.stats.hits == 1

    def test_get_still_returns_none_on_miss(self):
        """The public ``get`` contract is unchanged: ``None`` on a miss
        (``lookup`` exists for callers that must distinguish)."""
        cache = ResultCache()
        assert cache.get(_key("q", 1)) is None
        cache.put(_key("q", 1), None)
        assert cache.get(_key("q", 1)) is None  # a cached None looks the same
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hit_rate(self):
        cache = ResultCache()
        assert cache.stats.hit_rate == 0.0
        cache.put(_key("q", 1), "v")
        cache.get(_key("q", 1))
        cache.get(_key("other", 1))
        assert cache.stats.hit_rate == 0.5


class TestEviction:
    def test_lru_under_byte_budget(self):
        entry = np.zeros(128, dtype=np.int64)  # 1 KiB each
        budget = 3 * estimate_nbytes(entry)
        cache = ResultCache(max_bytes=int(budget))
        for version in (1, 2, 3):
            cache.put(_key("q", version), entry.copy())
        cache.get(_key("q", 1))  # refresh v1 -> v2 is now LRU
        cache.put(_key("q", 4), entry.copy())
        assert _key("q", 2) not in cache
        assert _key("q", 1) in cache and _key("q", 4) in cache
        assert cache.stats.evictions == 1
        assert cache.stats.current_bytes <= budget

    def test_oversized_entry_not_admitted(self):
        cache = ResultCache(max_bytes=64)
        cache.put(_key("q", 1), np.zeros(1024, dtype=np.int64))
        assert _key("q", 1) not in cache
        assert len(cache) == 0

    def test_zero_budget_disables(self):
        cache = ResultCache(max_bytes=0)
        cache.put(_key("q", 1), "v")
        assert cache.get(_key("q", 1)) is None

    def test_replacing_entry_reclaims_bytes(self):
        cache = ResultCache()
        cache.put(_key("q", 1), np.zeros(1024, dtype=np.int64))
        before = cache.stats.current_bytes
        cache.put(_key("q", 1), np.zeros(1024, dtype=np.int64))
        assert cache.stats.current_bytes == before
        assert len(cache) == 1


class TestInvalidation:
    def test_invalidate_tables_is_precise(self):
        cache = ResultCache()
        cache.put(_key("q1", 1), "a", tables=["kv"])
        cache.put(_key("q2", 1), "b", tables=["kv", "edges"])
        cache.put(_key("q3", 1), "c", tables=["other"])
        assert cache.invalidate_tables(["KV"]) == 2  # case-insensitive
        assert cache.get(_key("q3", 1)) == "c"
        assert cache.stats.invalidations == 2

    def test_clear(self):
        cache = ResultCache()
        cache.put(_key("q", 1), "v")
        cache.clear()
        assert len(cache) == 0 and cache.stats.current_bytes == 0


class TestFingerprints:
    def test_fingerprint_text_stable_and_sensitive(self):
        assert fingerprint_text("SELECT 1", [1]) == fingerprint_text("SELECT 1", [1])
        assert fingerprint_text("SELECT 1", [1]) != fingerprint_text("SELECT 1", [2])
        assert fingerprint_text({"a": 1, "b": 2}) == fingerprint_text({"b": 2, "a": 1})

    def test_estimate_nbytes_monotone(self):
        small = np.zeros(8, dtype=np.int64)
        large = np.zeros(8192, dtype=np.int64)
        assert estimate_nbytes(large) > estimate_nbytes(small)
        assert estimate_nbytes({"x": large}) >= estimate_nbytes(large)
        shared = [large, large]
        assert estimate_nbytes(shared) < 2 * estimate_nbytes(large)
