"""Tests for §3.3 dynamic graph analysis."""

import numpy as np
import pytest

from repro.sql_graph import pagerank_sql, triangle_count_sql
from repro.temporal import (
    ContinuousAnalysis,
    GraphMutator,
    VersionedEdgeStore,
    pagerank_delta,
    pagerank_over_time,
    paths_decreased,
)


class TestMutations:
    @pytest.fixture
    def loaded(self, vx, tiny_edges):
        src, dst = tiny_edges
        handle = vx.load_graph("g", src, dst, num_vertices=5)
        return vx, handle, GraphMutator(vx.db, handle)

    def test_add_edge(self, loaded):
        vx, handle, mutator = loaded
        before = handle.num_edges
        mutator.add_edge(4, 1, weight=2.0)
        assert handle.num_edges == before + 1
        assert vx.sql(
            "SELECT weight FROM g_edge WHERE src = 4 AND dst = 1"
        ).scalar() == 2.0

    def test_add_edge_creates_unknown_endpoints(self, loaded):
        vx, handle, mutator = loaded
        mutator.add_edge(100, 101)
        node_ids = {r[0] for r in vx.sql("SELECT id FROM g_node").rows()}
        assert {100, 101} <= node_ids

    def test_remove_edge(self, loaded):
        vx, handle, mutator = loaded
        removed = mutator.remove_edge(0, 1)
        assert removed == 1
        assert vx.sql(
            "SELECT COUNT(*) FROM g_edge WHERE src = 0 AND dst = 1"
        ).scalar() == 0

    def test_update_weight(self, loaded):
        vx, handle, mutator = loaded
        assert mutator.update_weight(0, 1, 9.5) == 1
        assert vx.sql(
            "SELECT weight FROM g_edge WHERE src = 0 AND dst = 1"
        ).scalar() == 9.5

    def test_remove_vertex_cascades(self, loaded):
        vx, handle, mutator = loaded
        removed_edges = mutator.remove_vertex(2)
        assert removed_edges == 4  # 0->2, 1->2, 2->0, 2->3
        assert vx.sql("SELECT COUNT(*) FROM g_node WHERE id = 2").scalar() == 0

    def test_batch_is_atomic(self, loaded):
        vx, handle, mutator = loaded
        before = vx.sql("SELECT COUNT(*) FROM g_edge").scalar()
        with pytest.raises(Exception):
            mutator.add_edges([(0, 4, 1.0), (None, 5, 1.0)])  # second row bad
        assert vx.sql("SELECT COUNT(*) FROM g_edge").scalar() == before

    def test_analysis_sees_mutations(self, loaded):
        """§3.3's point: mutate, re-run, results change accordingly."""
        vx, handle, mutator = loaded
        before = triangle_count_sql(vx.db, handle)
        mutator.add_edge(1, 0)  # closes triangle 0-1-2
        after = triangle_count_sql(vx.db, handle)
        assert after >= before


class TestVersionedStore:
    def test_snapshot_respects_intervals(self, db):
        store = VersionedEdgeStore(db, "vg")
        store.add_edge(0, 1, timestamp=100)
        store.add_edge(1, 2, timestamp=200)
        store.remove_edge(0, 1, timestamp=300)
        assert store.snapshot(150).num_edges == 1
        assert store.snapshot(250).num_edges == 2
        assert store.snapshot(350).num_edges == 1

    def test_snapshot_vertex_set_is_stable_across_time(self, db):
        store = VersionedEdgeStore(db, "vg")
        store.add_edge(0, 1, timestamp=100)
        store.add_edge(2, 3, timestamp=500)
        early = store.snapshot(150)
        assert early.num_vertices == 4  # includes future vertices 2, 3

    def test_timestamps(self, db):
        store = VersionedEdgeStore(db, "vg")
        store.add_edge(0, 1, timestamp=100)
        store.remove_edge(0, 1, timestamp=300)
        assert store.timestamps() == [100, 300]

    def test_remove_only_closes_live_intervals(self, db):
        store = VersionedEdgeStore(db, "vg")
        store.add_edge(0, 1, timestamp=100)
        store.remove_edge(0, 1, timestamp=200)
        assert store.remove_edge(0, 1, timestamp=400) == 0


class TestTemporalQueries:
    def test_pagerank_over_time_and_delta(self, db):
        store = VersionedEdgeStore(db, "vg")
        # at t=100: chain 0->1->2; at t=300 a hub edge appears: 2->1
        store.add_edges([(0, 1, 100), (1, 2, 100)])
        store.add_edge(2, 1, timestamp=300)
        series = pagerank_over_time(db, store, [200, 400], iterations=5)
        assert set(series) == {200, 400}
        delta = pagerank_delta(series[200], series[400])
        moved = dict(delta)
        assert moved.get(1, 0) > 0  # vertex 1 gained rank from the new edge

    def test_pagerank_delta_thresholds_and_topk(self):
        before = {0: 0.5, 1: 0.25, 2: 0.25}
        after = {0: 0.1, 1: 0.6, 2: 0.3}
        all_changes = pagerank_delta(before, after)
        assert [v for v, _ in all_changes] == [0, 1, 2]
        assert pagerank_delta(before, after, top_k=1)[0][0] == 0
        assert pagerank_delta(before, after, min_change=0.3) == [(0, pytest.approx(-0.4)), (1, pytest.approx(0.35))]

    def test_paths_decreased(self, db):
        store = VersionedEdgeStore(db, "vg")
        store.add_edges([(0, 1, 10), (1, 2, 10)])  # 0->2 costs 2 hops
        store.add_edge(0, 2, timestamp=500)  # shortcut appears
        out = paths_decreased(db, store, source=0, before_ts=100, after_ts=600)
        assert out == [(2, 2.0, 1.0)]

    def test_paths_decreased_respects_threshold(self, db):
        store = VersionedEdgeStore(db, "vg")
        store.add_edges([(0, 1, 10), (1, 2, 10)])
        store.add_edge(0, 2, timestamp=500)
        assert paths_decreased(db, store, 0, 100, 600, min_decrease=2.0) == []


class TestContinuous:
    def test_history_accumulates(self, vx, tiny_edges):
        src, dst = tiny_edges
        handle = vx.load_graph("g", src, dst, num_vertices=5)
        analysis = ContinuousAnalysis(
            vx.db, handle, lambda db, g: triangle_count_sql(db, g)
        )
        first = analysis.run_once()
        second = analysis.apply_and_rerun(edges_to_add=[(1, 0, 1.0)])
        assert first.tick == 0 and second.tick == 1
        assert second.mutations_applied == 1
        assert len(analysis.history) == 2
        assert second.seconds > 0

    def test_removals_applied(self, vx, tiny_edges):
        src, dst = tiny_edges
        handle = vx.load_graph("g", src, dst, num_vertices=5)
        analysis = ContinuousAnalysis(
            vx.db, handle,
            lambda db, g: db.execute(f"SELECT COUNT(*) FROM {g.edge_table}").scalar(),
        )
        baseline = analysis.run_once().result
        tick = analysis.apply_and_rerun(edges_to_remove=[(0, 1)])
        assert tick.result == baseline - 1
