"""Tests for the §4 demo layer: layout, scope selection, console."""

import math

import pytest

from repro.datasets import MetadataSpec, attach_metadata
from repro.demo import DemoConsole, ScopeSelector, assign_layout
from repro.errors import VertexicaError
from repro.sql_graph import pagerank_sql, triangle_count_sql


@pytest.fixture
def loaded(vx, small_graph):
    handle = vx.load_graph(
        small_graph.name, small_graph.src, small_graph.dst,
        num_vertices=small_graph.num_vertices,
    )
    return vx, handle


class TestLayout:
    def test_one_row_per_vertex_in_unit_box(self, loaded):
        vx, handle = loaded
        table = assign_layout(vx.db, handle, seed=1)
        rows = vx.sql(f"SELECT id, x, y FROM {table}").rows()
        assert len(rows) == handle.num_vertices
        for _, x, y in rows:
            assert -1.001 <= x <= 1.001 and -1.001 <= y <= 1.001

    def test_deterministic_under_seed(self, loaded):
        vx, handle = loaded
        t1 = assign_layout(vx.db, handle, seed=5)
        rows1 = vx.sql(f"SELECT * FROM {t1} ORDER BY id").rows()
        t2 = assign_layout(vx.db, handle, seed=5)
        rows2 = vx.sql(f"SELECT * FROM {t2} ORDER BY id").rows()
        assert rows1 == rows2

    def test_hubs_near_center(self, loaded):
        vx, handle = loaded
        table = assign_layout(vx.db, handle, seed=1)
        hub = vx.sql(
            f"SELECT src FROM {handle.edge_table} GROUP BY src "
            f"ORDER BY COUNT(*) DESC LIMIT 1"
        ).scalar()
        hub_r = vx.sql(
            f"SELECT SQRT(x*x + y*y) FROM {table} WHERE id = ?", params=(hub,)
        ).scalar()
        max_r = vx.sql(f"SELECT MAX(SQRT(x*x + y*y)) FROM {table}").scalar()
        assert hub_r < max_r / 2


class TestScopeSelection:
    def test_by_vertices_induced_subgraph(self, loaded):
        vx, handle = loaded
        picked = [0, 1, 2, 3, 4, 5]
        sub = ScopeSelector(vx.db, handle).by_vertices(picked)
        edges = vx.sql(f"SELECT src, dst FROM {sub.edge_table}").rows()
        for src, dst in edges:
            assert src in picked and dst in picked
        oracle = vx.sql(
            f"SELECT COUNT(*) FROM {handle.edge_table} "
            f"WHERE src IN (0,1,2,3,4,5) AND dst IN (0,1,2,3,4,5)"
        ).scalar()
        assert len(edges) == oracle

    def test_by_vertices_keeps_isolated_picks(self, loaded):
        vx, handle = loaded
        sub = ScopeSelector(vx.db, handle).by_vertices([0, 59])
        ids = {r[0] for r in vx.sql(f"SELECT id FROM {sub.node_table}").rows()}
        assert {0, 59} <= ids

    def test_by_vertices_empty_rejected(self, loaded):
        vx, handle = loaded
        with pytest.raises(VertexicaError):
            ScopeSelector(vx.db, handle).by_vertices([])

    def test_by_rectangle(self, loaded):
        vx, handle = loaded
        assign_layout(vx.db, handle, seed=2)
        selector = ScopeSelector(vx.db, handle)
        sub = selector.by_rectangle(-0.5, -0.5, 0.5, 0.5)
        inside = {
            r[0] for r in vx.sql(
                f"SELECT id FROM {handle.name}_layout "
                "WHERE x BETWEEN -0.5 AND 0.5 AND y BETWEEN -0.5 AND 0.5"
            ).rows()
        }
        picked = {r[0] for r in vx.sql(f"SELECT id FROM {sub.node_table}").rows()}
        assert picked == inside

    def test_by_rectangle_requires_layout(self, loaded):
        vx, handle = loaded
        with pytest.raises(VertexicaError, match="no layout"):
            ScopeSelector(vx.db, handle).by_rectangle(0, 0, 1, 1)

    def test_by_edge_predicate_uses_metadata(self, loaded):
        vx, handle = loaded
        attach_metadata(
            vx.db, handle,
            MetadataSpec(uniform_ints=1, zipf_ints=1, floats=1, strings=1),
            seed=4,
        )
        sub = ScopeSelector(vx.db, handle).by_edge_predicate("etype = 'family'")
        expected = vx.sql(
            f"SELECT COUNT(*) FROM {handle.name}_edge_attrs WHERE etype = 'family'"
        ).scalar()
        assert sub.num_edges == expected

    def test_by_node_predicate(self, loaded):
        vx, handle = loaded
        attach_metadata(
            vx.db, handle,
            MetadataSpec(uniform_ints=1, zipf_ints=1, floats=1, strings=1),
            seed=4,
        )
        sub = ScopeSelector(vx.db, handle).by_node_predicate("u0 = 1")
        qualifying = {
            r[0] for r in vx.sql(
                f"SELECT id FROM {handle.name}_node_attrs WHERE u0 = 1"
            ).rows()
        }
        picked = {r[0] for r in vx.sql(f"SELECT id FROM {sub.node_table}").rows()}
        assert picked == qualifying

    def test_algorithms_run_on_scope(self, loaded):
        """A selected scope is a full graph handle: algorithms just work."""
        vx, handle = loaded
        sub = ScopeSelector(vx.db, handle).by_vertices(list(range(20)))
        ranks = pagerank_sql(vx.db, sub, iterations=4)
        assert all(v < 20 for v in ranks)


class TestConsole:
    def test_counts(self, loaded):
        vx, handle = loaded
        console = DemoConsole(vx.db, handle, label="Mar")
        assert console.node_count() == f"Mar node count = {handle.num_vertices}"
        assert console.edge_count() == f"Mar edges count = {handle.num_edges}"
        triangles = triangle_count_sql(vx.db, handle)
        assert console.triangle_count() == f"Mar triangle count = {triangles}"

    def test_top_shortest_paths_sorted(self, loaded):
        vx, handle = loaded
        console = DemoConsole(vx.db, handle)
        hub = vx.sql(
            f"SELECT src FROM {handle.edge_table} GROUP BY src "
            f"ORDER BY COUNT(*) DESC LIMIT 1"
        ).scalar()
        text = console.top_shortest_paths(source=hub, k=3)
        distances = [
            float(line.split("|")[1]) for line in text.splitlines()[2:]
        ]
        assert distances == sorted(distances)
        assert len(distances) == 3

    def test_top_pageranks_match_sql(self, loaded):
        vx, handle = loaded
        console = DemoConsole(vx.db, handle)
        text = console.top_pageranks(k=2)
        ranks = pagerank_sql(vx.db, handle, iterations=10)
        best = max(ranks, key=lambda v: (ranks[v], -v))
        assert f"> {best} |" in text

    def test_histogram_counts_every_vertex(self, loaded):
        vx, handle = loaded
        console = DemoConsole(vx.db, handle)
        text = console.histogram(buckets=4)
        counts = [int(line.rsplit("|", 1)[1]) for line in text.splitlines()[2:]]
        assert sum(counts) == handle.num_vertices
        assert len(counts) == 4

    def test_full_report_contains_all_blocks(self, loaded):
        vx, handle = loaded
        report = DemoConsole(vx.db, handle, label="Mar").report(source=0)
        for needle in (
            "node count", "edges count", "triangle count",
            "top shortest paths", "top pageranks", "histogram",
        ):
            assert needle in report
