"""Tests for the dataflow pipeline layer (§3.4 / GUI Dataflow panel)."""

import pytest

from repro.pipeline import (
    Pipeline,
    aggregate_stage,
    pagerank_stage,
    select_subgraph_stage,
    shortest_paths_stage,
    sql_stage,
    triangle_count_stage,
)
from repro.errors import PipelineError
from repro.sql_graph import pagerank_sql


@pytest.fixture
def context(vx, small_graph):
    handle = vx.load_graph(
        small_graph.name, small_graph.src, small_graph.dst,
        num_vertices=small_graph.num_vertices,
    )
    return {"db": vx.db, "graph": handle}


class TestDagExecution:
    def test_stages_run_in_dependency_order(self):
        order = []

        def make(name):
            def stage(ctx):
                order.append(name)
                return name

            return stage

        pipe = (
            Pipeline()
            .add_stage("a", make("a"))
            .add_stage("b", make("b"), depends_on=["a"])
            .add_stage("c", make("c"), depends_on=["a"])
            .add_stage("d", make("d"), depends_on=["b", "c"])
        )
        pipe.run()
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("d") == 3

    def test_stage_outputs_flow_through_context(self):
        pipe = (
            Pipeline()
            .add_stage("x", lambda ctx: 21)
            .add_stage("y", lambda ctx: ctx["x"] * 2, depends_on=["x"])
        )
        result = pipe.run()
        assert result["y"] == 42

    def test_initial_context_visible(self):
        pipe = Pipeline().add_stage("x", lambda ctx: ctx["seed"] + 1)
        assert pipe.run({"seed": 4})["x"] == 5

    def test_duplicate_stage_rejected(self):
        pipe = Pipeline().add_stage("x", lambda ctx: 1)
        with pytest.raises(PipelineError, match="duplicate"):
            pipe.add_stage("x", lambda ctx: 2)

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PipelineError, match="unknown stage"):
            Pipeline().add_stage("x", lambda ctx: 1, depends_on=["ghost"])

    def test_stage_failure_wrapped_with_name(self):
        pipe = Pipeline().add_stage("boom", lambda ctx: 1 / 0)
        with pytest.raises(PipelineError, match="'boom' failed"):
            pipe.run()

    def test_timings_recorded(self):
        pipe = Pipeline().add_stage("x", lambda ctx: 1)
        result = pipe.run()
        assert set(result.timings()) == {"x"}
        assert result.total_seconds >= 0

    def test_missing_result_key(self):
        result = Pipeline().add_stage("x", lambda ctx: 1).run()
        with pytest.raises(KeyError):
            result["nope"]


class TestPaperPipeline:
    def test_selection_triangle_sssp_pagerank_aggregate(self, context):
        """The GUI's example dataflow: Selection -> Triangle Counting +
        Shortest Paths + PageRank -> Aggregate."""
        pipe = (
            Pipeline("demo")
            .add_stage("subgraph", select_subgraph_stage("src < 40 AND dst < 40", name="sub"))
            .add_stage("triangles", triangle_count_stage(graph_key="subgraph"),
                       depends_on=["subgraph"])
            .add_stage("paths", shortest_paths_stage(0, graph_key="subgraph"),
                       depends_on=["subgraph"])
            .add_stage("ranks", pagerank_stage(iterations=5, graph_key="subgraph"),
                       depends_on=["subgraph"])
            .add_stage(
                "top3",
                aggregate_stage("ranks", lambda ranks: sorted(
                    ranks.items(), key=lambda kv: (-kv[1], kv[0])
                )[:3]),
                depends_on=["ranks"],
            )
        )
        result = pipe.run(context)
        assert isinstance(result["triangles"], int)
        assert len(result["top3"]) == 3
        sub = result["subgraph"]
        assert all(v < 40 for v in result["ranks"])
        # ranks match a direct run over the same subgraph
        direct = pagerank_sql(context["db"], sub, iterations=5)
        assert result["ranks"] == direct

    def test_sql_stage(self, context):
        pipe = Pipeline().add_stage(
            "count", sql_stage(f"SELECT COUNT(*) FROM {context['graph'].edge_table}")
        )
        assert pipe.run(context)["count"][0][0] == context["graph"].num_edges

    def test_rank_histogram_post_processing(self, context):
        """§4.2.2: 'distribution of PageRank values' as an aggregate stage."""

        def histogram(ranks):
            buckets = {}
            for value in ranks.values():
                bucket = round(value, 3)
                buckets[bucket] = buckets.get(bucket, 0) + 1
            return buckets

        pipe = (
            Pipeline()
            .add_stage("ranks", pagerank_stage(iterations=4))
            .add_stage("hist", aggregate_stage("ranks", histogram), depends_on=["ranks"])
        )
        result = pipe.run(context)
        assert sum(result["hist"].values()) == context["graph"].num_vertices
