"""Tests for the §3.2 hybrid queries."""

import numpy as np
import pytest

from repro.hybrid import (
    important_bridges,
    near_or_important,
    pagerank_on_subgraph,
    sssp_from_most_clustered,
)
from repro.sql_graph import (
    local_clustering_coefficients,
    pagerank_sql,
    shortest_paths_sql,
    weak_ties_sql,
)


@pytest.fixture
def loaded(vx, small_graph):
    handle = vx.load_graph(
        small_graph.name, small_graph.src, small_graph.dst,
        num_vertices=small_graph.num_vertices,
    )
    return vx, handle


class TestImportantBridges:
    def test_results_satisfy_both_predicates(self, loaded):
        vx, handle = loaded
        bridges = important_bridges(vx.db, handle, rank_percentile=0.8)
        assert bridges, "expected at least one important bridge on this graph"
        ranks = pagerank_sql(vx.db, handle, iterations=10)
        ties = weak_ties_sql(vx.db, handle, min_pairs=1)
        ordered = sorted(ranks.values())
        threshold = ordered[min(int(len(ordered) * 0.8), len(ordered) - 1)]
        for vertex, rank, pairs in bridges:
            assert rank > threshold
            assert ties[vertex] == pairs

    def test_sorted_by_rank_desc(self, loaded):
        vx, handle = loaded
        bridges = important_bridges(vx.db, handle, rank_percentile=0.5)
        ranks = [rank for _, rank, _ in bridges]
        assert ranks == sorted(ranks, reverse=True)


class TestSsspFromMostClustered:
    def test_source_has_max_coefficient(self, loaded):
        vx, handle = loaded
        source, distances = sssp_from_most_clustered(vx.db, handle)
        coefficients = local_clustering_coefficients(vx.db, handle)
        assert coefficients[source] == max(coefficients.values())
        assert distances[source] == 0.0

    def test_distances_match_direct_sssp(self, loaded):
        vx, handle = loaded
        source, distances = sssp_from_most_clustered(vx.db, handle)
        assert distances == shortest_paths_sql(vx.db, handle, source)


class TestNearOrImportant:
    def test_categories_are_correct(self, loaded):
        vx, handle = loaded
        out = near_or_important(
            vx.db, handle, source=0, distance_threshold=2.0, rank_percentile=0.9
        )
        assert out
        distances = shortest_paths_sql(vx.db, handle, 0)
        ranks = pagerank_sql(vx.db, handle, iterations=10)
        ordered = sorted(ranks.values())
        threshold = ordered[min(int(len(ordered) * 0.9), len(ordered) - 1)]
        for vertex, reason in out:
            near = distances[vertex] < 2.0
            important = ranks[vertex] > threshold
            expected = {
                (True, True): "both",
                (True, False): "near",
                (False, True): "important",
            }[(near, important)]
            assert reason == expected

    def test_all_flagged_vertices_included(self, loaded):
        vx, handle = loaded
        out = dict(near_or_important(vx.db, handle, 0, 2.0, rank_percentile=0.9))
        distances = shortest_paths_sql(vx.db, handle, 0)
        for vertex, distance in distances.items():
            if distance < 2.0:
                assert vertex in out


class TestLocalizedPagerank:
    def test_subgraph_selection_filters_edges(self, vx):
        src = [0, 1, 2, 3]
        dst = [1, 2, 3, 0]
        weights = [5.0, 1.0, 5.0, 1.0]
        handle = vx.load_graph("wg", src, dst, weights=weights)
        sub_ranks = pagerank_on_subgraph(vx, handle, "weight > 2.0", iterations=5)
        # only the heavy edges 0->1 and 2->3 survive -> 4 vertices remain
        assert set(sub_ranks) == {0, 1, 2, 3}
        assert vx.db.table("wg_sub_edge").num_rows == 2

    def test_predicate_can_reference_endpoints(self, vx, small_graph):
        handle = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            num_vertices=small_graph.num_vertices,
        )
        sub_ranks = pagerank_on_subgraph(vx, handle, "src < 30 AND dst < 30")
        assert all(v < 30 for v in sub_ranks)
