"""Tests for the exception hierarchy: one family, catchable at any level."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        leaves = [
            errors.SqlSyntaxError("x"),
            errors.CatalogError("x"),
            errors.TypeMismatchError("x"),
            errors.ConstraintError("x"),
            errors.TransactionError("x"),
            errors.UdfError("x"),
            errors.PlanError("x"),
            errors.ExecutionError("x"),
            errors.ProgramError("x"),
            errors.GraphLoadError("x"),
            errors.GraphDbError("x"),
            errors.GraphDbCapacityError("x"),
            errors.DatasetError("x"),
            errors.PipelineError("x"),
        ]
        for exc in leaves:
            assert isinstance(exc, errors.ReproError)

    def test_engine_family(self):
        for cls in (
            errors.SqlSyntaxError,
            errors.CatalogError,
            errors.TypeMismatchError,
            errors.ConstraintError,
            errors.TransactionError,
            errors.UdfError,
            errors.PlanError,
            errors.ExecutionError,
        ):
            assert issubclass(cls, errors.EngineError)

    def test_vertexica_family(self):
        assert issubclass(errors.ProgramError, errors.VertexicaError)
        assert issubclass(errors.GraphLoadError, errors.VertexicaError)

    def test_baseline_family(self):
        assert issubclass(errors.GraphDbError, errors.BaselineError)
        assert issubclass(errors.GraphDbCapacityError, errors.GraphDbError)

    def test_sql_syntax_error_location(self):
        exc = errors.SqlSyntaxError("bad token", position=17, line=2)
        assert "line 2" in str(exc)
        assert "17" in str(exc)
        assert exc.position == 17

    def test_sql_syntax_error_without_location(self):
        exc = errors.SqlSyntaxError("bad")
        assert str(exc) == "bad"

    def test_one_except_catches_engine_and_vertexica(self):
        caught = []
        for exc in (errors.PlanError("a"), errors.ProgramError("b")):
            try:
                raise exc
            except errors.ReproError as err:
                caught.append(type(err).__name__)
        assert caught == ["PlanError", "ProgramError"]
