"""Scalar vs. vectorized data-plane parity.

The batch compute path (``compute_batch`` + numpy staging) must be
*bit-identical* to the per-vertex scalar path for every bundled program:
same vertex values, same aggregator results, same superstep/halt
behavior.  These tests run the same program under
``compute_strategy="scalar"`` and ``"batch"`` on random graphs — with
isolated vertices, vertices that never receive messages, and messages
addressed to nonexistent ids — and compare everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Vertexica, VertexicaConfig
from repro.core.api import Vertex
from repro.core.codecs import vector_codec
from repro.core.program import (
    BatchVertexProgram,
    VertexBatch,
    VertexProgram,
    supports_batch,
)
from repro.errors import ProgramError, VertexicaError
from repro.programs import (
    AdaptivePageRank,
    CollaborativeFiltering,
    ConnectedComponents,
    InDegree,
    LabelPropagation,
    OutDegree,
    PageRank,
    RandomWalkWithRestart,
    ShortestPaths,
)


def random_graph(seed: int, n: int = 120, m: int = 700):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    weights = rng.uniform(0.5, 4.0, m)
    return src, dst, weights


def run_with(strategy: str, program_factory, seed: int, symmetrize: bool = False, **cfg):
    n = 120
    src, dst, weights = random_graph(seed)
    cfg.setdefault("n_partitions", 4)
    vx = Vertexica(config=VertexicaConfig(compute_strategy=strategy, **cfg))
    # num_vertices > max id guarantees isolated vertices with no edges
    # and no messages ever.
    graph = vx.load_graph(
        "g", src, dst, weights=weights, num_vertices=n + 8, symmetrize=symmetrize
    )
    return vx.run(graph, program_factory())


def assert_runs_identical(scalar, batch):
    """Values, aggregates, and halt behavior must match exactly."""
    assert scalar.values == batch.values  # bit-identical, not approximate
    s_steps, b_steps = scalar.stats.supersteps, batch.stats.supersteps
    assert len(s_steps) == len(b_steps)
    for s, b in zip(s_steps, b_steps):
        assert s.active_vertices == b.active_vertices
        assert s.messages_in == b.messages_in
        assert s.messages_out == b.messages_out
        assert s.vertex_updates == b.vertex_updates
        assert s.aggregated == b.aggregated


PROGRAMS = [
    pytest.param(lambda: PageRank(iterations=6), False, id="pagerank"),
    pytest.param(lambda: PageRank(iterations=4, damping=0.6), False, id="pagerank-damped"),
    pytest.param(lambda: ShortestPaths(source=0), False, id="sssp"),
    pytest.param(lambda: ShortestPaths(source=5), False, id="sssp-alt-source"),
    pytest.param(lambda: ConnectedComponents(), True, id="components"),
    pytest.param(lambda: LabelPropagation(iterations=4), True, id="label-prop"),
    pytest.param(
        lambda: LabelPropagation(iterations=3, seeds={0: 500, 3: 500, 7: 500}),
        True,
        id="label-prop-seeded",
    ),
]


class TestBatchScalarParity:
    @pytest.mark.parametrize("program_factory,symmetrize", PROGRAMS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_bit_identical_results(self, program_factory, symmetrize, seed):
        scalar = run_with("scalar", program_factory, seed, symmetrize)
        batch = run_with("batch", program_factory, seed, symmetrize)
        assert_runs_identical(scalar, batch)
        assert all(s.compute_path == "scalar" for s in scalar.stats.supersteps)
        assert all(s.compute_path == "batch" for s in batch.stats.supersteps)

    @pytest.mark.parametrize("program_factory,symmetrize", PROGRAMS)
    def test_join_input_format_parity(self, program_factory, symmetrize):
        scalar = run_with(
            "scalar", program_factory, 7, symmetrize, input_strategy="join"
        )
        batch = run_with(
            "batch", program_factory, 7, symmetrize, input_strategy="join"
        )
        assert_runs_identical(scalar, batch)

    def test_pagerank_without_combiner(self):
        # Multiple raw messages per vertex: the batch path's bincount
        # accumulation must match Python's sequential sum exactly.
        scalar = run_with("scalar", lambda: PageRank(iterations=5), 13, use_combiner=False)
        batch = run_with("batch", lambda: PageRank(iterations=5), 13, use_combiner=False)
        assert_runs_identical(scalar, batch)

    def test_single_partition_parity(self):
        scalar = run_with("scalar", lambda: PageRank(iterations=4), 5, n_partitions=1)
        batch = run_with("batch", lambda: PageRank(iterations=4), 5, n_partitions=1)
        assert_runs_identical(scalar, batch)

    def test_sssp_unreachable_vertices_stay_infinite(self):
        batch = run_with("batch", lambda: ShortestPaths(source=0), 3)
        assert any(v == float("inf") for v in batch.values.values())


class TestScalarFallback:
    def test_auto_falls_back_for_scalar_only_programs(self):
        auto = run_with("auto", lambda: RandomWalkWithRestart(source=2), 9, True)
        scalar = run_with("scalar", lambda: RandomWalkWithRestart(source=2), 9, True)
        assert_runs_identical(scalar, auto)
        assert all(s.compute_path == "scalar" for s in auto.stats.supersteps)

    def test_auto_uses_batch_when_available(self):
        auto = run_with("auto", lambda: PageRank(iterations=3), 9)
        assert all(s.compute_path == "batch" for s in auto.stats.supersteps)

    def test_forcing_batch_on_scalar_program_raises(self):
        with pytest.raises(VertexicaError, match="compute_batch"):
            run_with("batch", lambda: RandomWalkWithRestart(source=2), 9, True)

    def test_aggregator_program_parity_via_scalar_path(self):
        # AdaptivePageRank has no batch kernel; auto must match scalar
        # including its per-superstep aggregator values.
        auto = run_with("auto", lambda: AdaptivePageRank(), 21)
        scalar = run_with("scalar", lambda: AdaptivePageRank(), 21)
        assert_runs_identical(scalar, auto)

    def test_supports_batch_detection(self):
        assert supports_batch(PageRank(iterations=1))
        assert supports_batch(ConnectedComponents())
        assert supports_batch(LabelPropagation())
        assert not supports_batch(RandomWalkWithRestart(source=0))


class GhostMessenger(BatchVertexProgram):
    """Sends messages to a vertex id that does not exist — both paths
    must drop them identically and still converge."""

    combiner = None

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return float(vertex_id)

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep == 0:
            vertex.send_message(10_000, 1.0)  # nonexistent destination
            vertex.send_message_to_all_neighbors(vertex.value)
        else:
            vertex.modify_vertex_value(sum(vertex.messages))
        vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        if batch.superstep == 0:
            batch.send(
                batch.ids,
                np.full(batch.size, 10_000, dtype=np.int64),
                np.ones(batch.size, dtype=np.float64),
            )
            batch.send_to_all_neighbors(batch.values)
        else:
            batch.set_values(batch.sum_messages())
        batch.vote_to_halt()


class TestDroppedMessages:
    def test_messages_to_nonexistent_ids_dropped_identically(self):
        scalar = run_with("scalar", GhostMessenger, 17)
        batch = run_with("batch", GhostMessenger, 17)
        assert_runs_identical(scalar, batch)

    def test_ghost_messages_do_not_create_vertices(self):
        batch = run_with("batch", GhostMessenger, 17)
        assert 10_000 not in batch.values


# ---------------------------------------------------------------------------
# SQL-staged vs shard-resident data plane parity (every shipped program)
# ---------------------------------------------------------------------------
def _plane_graph_data(matching: bool):
    if matching:
        # 30 disjoint user-item pairs with rating-like weights (the
        # graph CollaborativeFiltering trains on).
        src = np.arange(0, 60, 2, dtype=np.int64)
        dst = src + 1
        weights = 1.0 + (np.arange(30, dtype=np.float64) % 9) / 2.0
        return src, dst, weights, 66
    from repro.datasets.generators import power_law_graph

    g = power_law_graph("g", 90, 450, seed=23, weighted=True)
    return g.src, g.dst, g.weights, 96


def run_on_plane(
    data_plane: str, program_factory, symmetrize=False, matching=False, **cfg
):
    src, dst, weights, n = _plane_graph_data(matching)
    cfg.setdefault("n_partitions", 4)
    vx = Vertexica(config=VertexicaConfig(data_plane=data_plane, **cfg))
    graph = vx.load_graph(
        "g", src, dst, weights=weights, num_vertices=n, symmetrize=symmetrize
    )
    return vx.run(graph, program_factory())


#: (program factory, needs_symmetrized_edges, matching_graph) — every
#: program in ``repro.programs``; keep in sync with its ``__all__``.
#: Unlike the union-vs-join suite, CollaborativeFiltering runs on the
#: *general* graph here: the shard plane reproduces the SQL plane's
#: message delivery order exactly (source-partition order, then emission
#: order), so even order-sensitive SGD must stay bit-identical.
ALL_PROGRAMS_BOTH_PLANES = [
    pytest.param(lambda: PageRank(iterations=5), False, False, id="pagerank"),
    pytest.param(
        lambda: AdaptivePageRank(epsilon=1e-4), False, False, id="adaptive-pagerank"
    ),
    pytest.param(lambda: ShortestPaths(source=0), False, False, id="sssp"),
    pytest.param(lambda: ConnectedComponents(), True, False, id="components"),
    pytest.param(
        lambda: CollaborativeFiltering(iterations=4, rank=4),
        True,
        False,
        id="collab-filter",
    ),
    pytest.param(
        lambda: CollaborativeFiltering(iterations=4, rank=4, codec="json"),
        True,
        False,
        id="collab-filter-json",
    ),
    pytest.param(
        lambda: RandomWalkWithRestart(source=2, iterations=5), False, False, id="rwr"
    ),
    pytest.param(lambda: InDegree(), False, False, id="in-degree"),
    pytest.param(lambda: OutDegree(), False, False, id="out-degree"),
    pytest.param(lambda: LabelPropagation(iterations=4), True, False, id="label-prop"),
]


class TestShardPlaneParity:
    """``data_plane="shards"`` must be bit-identical to the SQL plane for
    every shipped program: same values, same aggregates, same per-
    superstep message/halt behavior."""

    @pytest.mark.parametrize(
        "program_factory,symmetrize,matching", ALL_PROGRAMS_BOTH_PLANES
    )
    def test_planes_bit_identical(self, program_factory, symmetrize, matching):
        sql = run_on_plane("sql", program_factory, symmetrize, matching)
        shards = run_on_plane("shards", program_factory, symmetrize, matching)
        assert_runs_identical(sql, shards)
        assert all(s.update_path in ("memory", "none") for s in shards.stats.supersteps)

    @pytest.mark.parametrize(
        "program_factory,symmetrize,matching", ALL_PROGRAMS_BOTH_PLANES
    )
    def test_shard_plane_parallel_workers(self, program_factory, symmetrize, matching):
        """Shard tasks are embarrassingly parallel; a thread pool must
        not change any result (deterministic routing + barriers)."""
        serial = run_on_plane("shards", program_factory, symmetrize, matching)
        threaded = run_on_plane(
            "shards", program_factory, symmetrize, matching, n_workers=4
        )
        assert_runs_identical(serial, threaded)

    @pytest.mark.parametrize(
        "program_factory,symmetrize,matching", ALL_PROGRAMS_BOTH_PLANES
    )
    def test_shard_plane_process_workers(self, program_factory, symmetrize, matching):
        """``executor="processes"`` — shard state in shared memory,
        compute in spawned worker processes — must be bit-identical to
        serial execution for every shipped program (exact values AND
        per-superstep stats), including the order-sensitive ones."""
        serial = run_on_plane("shards", program_factory, symmetrize, matching)
        processes = run_on_plane(
            "shards", program_factory, symmetrize, matching,
            n_workers=2, executor="processes",
        )
        assert_runs_identical(serial, processes)

    def test_shard_plane_scalar_strategy_parity(self):
        sql = run_on_plane("sql", lambda: PageRank(iterations=5), compute_strategy="scalar")
        shards = run_on_plane(
            "shards", lambda: PageRank(iterations=5), compute_strategy="scalar"
        )
        assert_runs_identical(sql, shards)
        assert all(s.compute_path == "scalar" for s in shards.stats.supersteps)

    def test_shard_plane_without_combiner(self):
        sql = run_on_plane("sql", lambda: PageRank(iterations=5), use_combiner=False)
        shards = run_on_plane(
            "shards", lambda: PageRank(iterations=5), use_combiner=False
        )
        assert_runs_identical(sql, shards)

    def test_sync_policy_does_not_change_results(self):
        every = run_on_plane(
            "shards", lambda: ShortestPaths(source=0), superstep_sync="every"
        )
        halt = run_on_plane(
            "shards", lambda: ShortestPaths(source=0), superstep_sync="halt"
        )
        assert_runs_identical(every, halt)

    def test_single_partition_shard_plane(self):
        sql = run_on_plane("sql", lambda: ConnectedComponents(), True, n_partitions=1)
        shards = run_on_plane(
            "shards", lambda: ConnectedComponents(), True, n_partitions=1
        )
        assert_runs_identical(sql, shards)

    def test_ghost_messages_dropped_identically(self):
        src, dst, weights, n = _plane_graph_data(False)
        results = {}
        for plane in ("sql", "shards"):
            vx = Vertexica(config=VertexicaConfig(data_plane=plane, n_partitions=4))
            graph = vx.load_graph("g", src, dst, weights=weights, num_vertices=n)
            results[plane] = vx.run(graph, GhostMessenger())
        assert_runs_identical(results["sql"], results["shards"])
        assert 10_000 not in results["shards"].values


# ---------------------------------------------------------------------------
# Typed vector value plane: dense multi-column state vs the JSON codec
# ---------------------------------------------------------------------------
class TestVectorValuePlane:
    """The vector codec path (k typed FLOAT columns) must be bit-identical
    to the JSON-in-VARCHAR path it replaces — same factors, same
    superstep behavior — on both data planes and at several ranks."""

    @pytest.mark.parametrize("rank", [1, 3, 8])
    @pytest.mark.parametrize("plane", ["sql", "shards"])
    def test_cf_vector_vs_json_bit_identical(self, rank, plane):
        json_run = run_on_plane(
            plane,
            lambda: CollaborativeFiltering(iterations=4, rank=rank, codec="json"),
            symmetrize=True,
        )
        vector_run = run_on_plane(
            plane,
            lambda: CollaborativeFiltering(iterations=4, rank=rank, codec="vector"),
            symmetrize=True,
        )
        assert_runs_identical(json_run, vector_run)

    @pytest.mark.parametrize("rank", [2, 5])
    def test_cf_vector_cross_plane(self, rank):
        sql = run_on_plane(
            "sql", lambda: CollaborativeFiltering(iterations=4, rank=rank), True
        )
        shards = run_on_plane(
            "shards", lambda: CollaborativeFiltering(iterations=4, rank=rank), True
        )
        assert_runs_identical(sql, shards)

    def test_cf_vector_matches_giraph_baseline(self):
        # The scalar compute is the semantic reference on every engine:
        # the Giraph baseline (no codecs at all) must land on the same
        # factors as the vector-codec relational path.
        from repro.baselines.giraph import GiraphConfig, GiraphEngine

        src, dst, weights, n = _plane_graph_data(False)
        program = CollaborativeFiltering(iterations=4, rank=4)
        vx = Vertexica()
        graph = vx.load_graph(
            "g", src, dst, weights=weights, num_vertices=n, symmetrize=True
        )
        vertexica_run = vx.run(graph, program)

        from repro.core.runner import _symmetrized

        gsrc, gdst, gw = _symmetrized(
            np.asarray(src), np.asarray(dst), np.asarray(weights, dtype=np.float64)
        )
        engine = GiraphEngine(
            n, gsrc, gdst, gw,
            config=GiraphConfig(barrier_latency_s=0.0, serialize_messages=True),
        )
        giraph_run = engine.run(CollaborativeFiltering(iterations=4, rank=4))
        assert vertexica_run.values == giraph_run.values

    def test_message_senders_come_from_src_column(self):
        class SenderEcho(BatchVertexProgram):
            """Vertex value = sum of sender ids (vector payload unused)."""

            vertex_codec = vector_codec(2)
            message_codec = vector_codec(2)
            combiner = None

            def initial_value(self, vertex_id, out_degree, num_vertices):
                return [float(vertex_id), 0.0]

            def compute(self, vertex):
                if vertex.superstep == 0:
                    vertex.send_message_to_all_neighbors(vertex.value)
                else:
                    total = float(sum(vertex.message_senders))
                    vertex.modify_vertex_value([total, float(len(vertex.messages))])
                vertex.vote_to_halt()

            def compute_batch(self, batch):
                if batch.superstep == 0:
                    batch.send_to_all_neighbors(batch.values)
                else:
                    counts = batch.message_counts
                    segments = np.repeat(np.arange(batch.size), counts)
                    sums = np.bincount(
                        segments,
                        weights=batch.message_senders.astype(np.float64),
                        minlength=batch.size,
                    )
                    batch.set_values(
                        np.column_stack([sums, counts.astype(np.float64)])
                    )
                batch.vote_to_halt()

        scalar = run_with("scalar", SenderEcho, 13)
        batch = run_with("batch", SenderEcho, 13)
        assert_runs_identical(scalar, batch)
        shards = run_on_plane("shards", SenderEcho)
        sql = run_on_plane("sql", SenderEcho)
        assert_runs_identical(sql, shards)

    def test_vector_batch_kernel_parity(self):
        class ComponentMax(BatchVertexProgram):
            """Per-component max propagation over width-3 state: an
            order-insensitive vector kernel, so batch reduceat and the
            scalar loop must agree bitwise."""

            vertex_codec = vector_codec(3)
            message_codec = vector_codec(3)
            combiner = None
            max_supersteps = 4

            def initial_value(self, vertex_id, out_degree, num_vertices):
                rng = np.random.default_rng(vertex_id + 41)
                return rng.standard_normal(3).tolist()

            def compute(self, vertex):
                value = np.asarray(vertex.value, dtype=np.float64)
                if vertex.superstep > 0:
                    if not vertex.messages:
                        vertex.vote_to_halt()
                        return
                    incoming = np.asarray(vertex.messages, dtype=np.float64)
                    value = np.maximum(value, incoming.max(axis=0))
                    vertex.modify_vertex_value(value.tolist())
                vertex.send_message_to_all_neighbors(value.tolist())

            def compute_batch(self, batch):
                values = np.asarray(batch.values, dtype=np.float64)
                if batch.superstep > 0:
                    counts = batch.message_counts
                    has = counts > 0
                    if not bool(has.any()):
                        batch.vote_to_halt()
                        return
                    nonempty = np.flatnonzero(counts)
                    maxima = np.full_like(values, -np.inf)
                    maxima[nonempty] = np.maximum.reduceat(
                        batch.message_values, batch.msg_indptr[:-1][nonempty], axis=0
                    )
                    updated = np.maximum(values, maxima)
                    values = np.where(has[:, None], updated, values)
                    batch.set_values(values, mask=has)
                    batch.vote_to_halt(~has)
                    batch.send_to_all_neighbors(values, mask=has)
                    # halted-without-messages vertices sent nothing in the
                    # scalar path either (they returned before sending)
                else:
                    batch.send_to_all_neighbors(values)

        scalar = run_with("scalar", ComponentMax, 7, True)
        batch = run_with("batch", ComponentMax, 7, True)
        assert_runs_identical(scalar, batch)
        sql = run_on_plane("sql", ComponentMax, symmetrize=True)
        shards = run_on_plane("shards", ComponentMax, symmetrize=True)
        assert_runs_identical(sql, shards)

    def test_vector_codec_rejects_join_input_format(self):
        with pytest.raises(VertexicaError, match="join input format"):
            run_on_plane(
                "sql",
                lambda: CollaborativeFiltering(iterations=2, rank=2),
                symmetrize=True,
                input_strategy="join",
            )

    def test_vector_codec_rejects_combiner(self):
        class BadCombiner(VertexProgram):
            vertex_codec = vector_codec(2)
            message_codec = vector_codec(2)
            combiner = "SUM"

            def compute(self, vertex):  # pragma: no cover - never runs
                pass

        with pytest.raises(ProgramError, match="vector"):
            BadCombiner().validate()


class TestEdgeCases:
    def test_empty_graph_single_vertex(self):
        vx = Vertexica(config=VertexicaConfig(compute_strategy="batch"))
        graph = vx.load_graph("g", [], [], num_vertices=3)
        result = vx.run(graph, PageRank(iterations=2))
        # Dangling vertices keep (1-d)/N mass with no incoming rank.
        expected = (1.0 - 0.85) / 3
        assert result.values == {0: expected, 1: expected, 2: expected}

    def test_isolated_vertices_match(self):
        # All 8 padding vertices (ids 120..127) are isolated.
        scalar = run_with("scalar", lambda: ConnectedComponents(), 19, True)
        batch = run_with("batch", lambda: ConnectedComponents(), 19, True)
        for vid in range(120, 128):
            assert scalar.values[vid] == vid
            assert batch.values[vid] == vid
