"""Scalar vs. vectorized data-plane parity.

The batch compute path (``compute_batch`` + numpy staging) must be
*bit-identical* to the per-vertex scalar path for every bundled program:
same vertex values, same aggregator results, same superstep/halt
behavior.  These tests run the same program under
``compute_strategy="scalar"`` and ``"batch"`` on random graphs — with
isolated vertices, vertices that never receive messages, and messages
addressed to nonexistent ids — and compare everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Vertexica, VertexicaConfig
from repro.core.api import Vertex
from repro.core.codecs import JSON_CODEC, vector_codec
from repro.core.program import (
    BatchVertexProgram,
    VertexBatch,
    VertexProgram,
    supports_batch,
)
from repro.core.worker import segment_max, segment_mean, segment_min, segment_sum
from repro.errors import ProgramError, VertexicaError
from repro.programs import (
    AdaptivePageRank,
    CollaborativeFiltering,
    ConnectedComponents,
    FeaturePropagation,
    InDegree,
    LabelPropagation,
    MultiSourceSSSP,
    OutDegree,
    PageRank,
    RandomWalkEmbeddings,
    RandomWalkWithRestart,
    ShortestPaths,
)


def random_graph(seed: int, n: int = 120, m: int = 700):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    weights = rng.uniform(0.5, 4.0, m)
    return src, dst, weights


def run_with(strategy: str, program_factory, seed: int, symmetrize: bool = False, **cfg):
    n = 120
    src, dst, weights = random_graph(seed)
    cfg.setdefault("n_partitions", 4)
    vx = Vertexica(config=VertexicaConfig(compute_strategy=strategy, **cfg))
    # num_vertices > max id guarantees isolated vertices with no edges
    # and no messages ever.
    graph = vx.load_graph(
        "g", src, dst, weights=weights, num_vertices=n + 8, symmetrize=symmetrize
    )
    return vx.run(graph, program_factory())


def assert_runs_identical(scalar, batch):
    """Values, aggregates, and halt behavior must match exactly."""
    assert scalar.values == batch.values  # bit-identical, not approximate
    s_steps, b_steps = scalar.stats.supersteps, batch.stats.supersteps
    assert len(s_steps) == len(b_steps)
    for s, b in zip(s_steps, b_steps):
        assert s.active_vertices == b.active_vertices
        assert s.messages_in == b.messages_in
        assert s.messages_out == b.messages_out
        assert s.vertex_updates == b.vertex_updates
        assert s.aggregated == b.aggregated


PROGRAMS = [
    pytest.param(lambda: PageRank(iterations=6), False, id="pagerank"),
    pytest.param(lambda: PageRank(iterations=4, damping=0.6), False, id="pagerank-damped"),
    pytest.param(lambda: ShortestPaths(source=0), False, id="sssp"),
    pytest.param(lambda: ShortestPaths(source=5), False, id="sssp-alt-source"),
    pytest.param(lambda: ConnectedComponents(), True, id="components"),
    pytest.param(lambda: LabelPropagation(iterations=4), True, id="label-prop"),
    pytest.param(
        lambda: LabelPropagation(iterations=3, seeds={0: 500, 3: 500, 7: 500}),
        True,
        id="label-prop-seeded",
    ),
]


class TestBatchScalarParity:
    @pytest.mark.parametrize("program_factory,symmetrize", PROGRAMS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_bit_identical_results(self, program_factory, symmetrize, seed):
        scalar = run_with("scalar", program_factory, seed, symmetrize)
        batch = run_with("batch", program_factory, seed, symmetrize)
        assert_runs_identical(scalar, batch)
        assert all(s.compute_path == "scalar" for s in scalar.stats.supersteps)
        assert all(s.compute_path == "batch" for s in batch.stats.supersteps)

    @pytest.mark.parametrize("program_factory,symmetrize", PROGRAMS)
    def test_join_input_format_parity(self, program_factory, symmetrize):
        scalar = run_with(
            "scalar", program_factory, 7, symmetrize, input_strategy="join"
        )
        batch = run_with(
            "batch", program_factory, 7, symmetrize, input_strategy="join"
        )
        assert_runs_identical(scalar, batch)

    def test_pagerank_without_combiner(self):
        # Multiple raw messages per vertex: the batch path's bincount
        # accumulation must match Python's sequential sum exactly.
        scalar = run_with("scalar", lambda: PageRank(iterations=5), 13, use_combiner=False)
        batch = run_with("batch", lambda: PageRank(iterations=5), 13, use_combiner=False)
        assert_runs_identical(scalar, batch)

    def test_single_partition_parity(self):
        scalar = run_with("scalar", lambda: PageRank(iterations=4), 5, n_partitions=1)
        batch = run_with("batch", lambda: PageRank(iterations=4), 5, n_partitions=1)
        assert_runs_identical(scalar, batch)

    def test_sssp_unreachable_vertices_stay_infinite(self):
        batch = run_with("batch", lambda: ShortestPaths(source=0), 3)
        assert any(v == float("inf") for v in batch.values.values())


class TestScalarFallback:
    def test_auto_falls_back_for_scalar_only_programs(self):
        auto = run_with("auto", lambda: RandomWalkWithRestart(source=2), 9, True)
        scalar = run_with("scalar", lambda: RandomWalkWithRestart(source=2), 9, True)
        assert_runs_identical(scalar, auto)
        assert all(s.compute_path == "scalar" for s in auto.stats.supersteps)

    def test_auto_uses_batch_when_available(self):
        auto = run_with("auto", lambda: PageRank(iterations=3), 9)
        assert all(s.compute_path == "batch" for s in auto.stats.supersteps)

    def test_forcing_batch_on_scalar_program_raises(self):
        with pytest.raises(VertexicaError, match="compute_batch"):
            run_with("batch", lambda: RandomWalkWithRestart(source=2), 9, True)

    def test_aggregator_program_parity_via_scalar_path(self):
        # AdaptivePageRank has no batch kernel; auto must match scalar
        # including its per-superstep aggregator values.
        auto = run_with("auto", lambda: AdaptivePageRank(), 21)
        scalar = run_with("scalar", lambda: AdaptivePageRank(), 21)
        assert_runs_identical(scalar, auto)

    def test_supports_batch_detection(self):
        assert supports_batch(PageRank(iterations=1))
        assert supports_batch(ConnectedComponents())
        assert supports_batch(LabelPropagation())
        assert not supports_batch(RandomWalkWithRestart(source=0))


class GhostMessenger(BatchVertexProgram):
    """Sends messages to a vertex id that does not exist — both paths
    must drop them identically and still converge."""

    combiner = None

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return float(vertex_id)

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep == 0:
            vertex.send_message(10_000, 1.0)  # nonexistent destination
            vertex.send_message_to_all_neighbors(vertex.value)
        else:
            vertex.modify_vertex_value(sum(vertex.messages))
        vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        if batch.superstep == 0:
            batch.send(
                batch.ids,
                np.full(batch.size, 10_000, dtype=np.int64),
                np.ones(batch.size, dtype=np.float64),
            )
            batch.send_to_all_neighbors(batch.values)
        else:
            batch.set_values(batch.sum_messages())
        batch.vote_to_halt()


class TestDroppedMessages:
    def test_messages_to_nonexistent_ids_dropped_identically(self):
        scalar = run_with("scalar", GhostMessenger, 17)
        batch = run_with("batch", GhostMessenger, 17)
        assert_runs_identical(scalar, batch)

    def test_ghost_messages_do_not_create_vertices(self):
        batch = run_with("batch", GhostMessenger, 17)
        assert 10_000 not in batch.values


# ---------------------------------------------------------------------------
# SQL-staged vs shard-resident data plane parity (every shipped program)
# ---------------------------------------------------------------------------
def _plane_graph_data(matching: bool):
    if matching:
        # 30 disjoint user-item pairs with rating-like weights (the
        # graph CollaborativeFiltering trains on).
        src = np.arange(0, 60, 2, dtype=np.int64)
        dst = src + 1
        weights = 1.0 + (np.arange(30, dtype=np.float64) % 9) / 2.0
        return src, dst, weights, 66
    from repro.datasets.generators import power_law_graph

    g = power_law_graph("g", 90, 450, seed=23, weighted=True)
    return g.src, g.dst, g.weights, 96


def run_on_plane(
    data_plane: str, program_factory, symmetrize=False, matching=False, **cfg
):
    src, dst, weights, n = _plane_graph_data(matching)
    cfg.setdefault("n_partitions", 4)
    vx = Vertexica(config=VertexicaConfig(data_plane=data_plane, **cfg))
    graph = vx.load_graph(
        "g", src, dst, weights=weights, num_vertices=n, symmetrize=symmetrize
    )
    return vx.run(graph, program_factory())


#: (program factory, needs_symmetrized_edges, matching_graph) — every
#: program in ``repro.programs``; keep in sync with its ``__all__``.
#: Unlike the union-vs-join suite, CollaborativeFiltering runs on the
#: *general* graph here: the shard plane reproduces the SQL plane's
#: message delivery order exactly (source-partition order, then emission
#: order), so even order-sensitive SGD must stay bit-identical.
ALL_PROGRAMS_BOTH_PLANES = [
    pytest.param(lambda: PageRank(iterations=5), False, False, id="pagerank"),
    pytest.param(
        lambda: AdaptivePageRank(epsilon=1e-4), False, False, id="adaptive-pagerank"
    ),
    pytest.param(lambda: ShortestPaths(source=0), False, False, id="sssp"),
    pytest.param(lambda: ConnectedComponents(), True, False, id="components"),
    pytest.param(
        lambda: CollaborativeFiltering(iterations=4, rank=4),
        True,
        False,
        id="collab-filter",
    ),
    pytest.param(
        lambda: CollaborativeFiltering(iterations=4, rank=4, codec="json"),
        True,
        False,
        id="collab-filter-json",
    ),
    pytest.param(
        lambda: RandomWalkWithRestart(source=2, iterations=5), False, False, id="rwr"
    ),
    pytest.param(lambda: InDegree(), False, False, id="in-degree"),
    pytest.param(lambda: OutDegree(), False, False, id="out-degree"),
    pytest.param(lambda: LabelPropagation(iterations=4), True, False, id="label-prop"),
    pytest.param(
        lambda: MultiSourceSSSP(sources=(0, 5, 11)), False, False, id="multi-sssp"
    ),
    pytest.param(
        lambda: FeaturePropagation(iterations=4, width=5),
        False,
        False,
        id="feature-prop",
    ),
    pytest.param(
        lambda: RandomWalkEmbeddings(iterations=3, dim=4),
        False,
        False,
        id="rw-embeddings",
    ),
]


class TestShardPlaneParity:
    """``data_plane="shards"`` must be bit-identical to the SQL plane for
    every shipped program: same values, same aggregates, same per-
    superstep message/halt behavior."""

    @pytest.mark.parametrize(
        "program_factory,symmetrize,matching", ALL_PROGRAMS_BOTH_PLANES
    )
    def test_planes_bit_identical(self, program_factory, symmetrize, matching):
        sql = run_on_plane("sql", program_factory, symmetrize, matching)
        shards = run_on_plane("shards", program_factory, symmetrize, matching)
        assert_runs_identical(sql, shards)
        assert all(s.update_path in ("memory", "none") for s in shards.stats.supersteps)

    @pytest.mark.parametrize(
        "program_factory,symmetrize,matching", ALL_PROGRAMS_BOTH_PLANES
    )
    def test_shard_plane_parallel_workers(self, program_factory, symmetrize, matching):
        """Shard tasks are embarrassingly parallel; a thread pool must
        not change any result (deterministic routing + barriers)."""
        serial = run_on_plane("shards", program_factory, symmetrize, matching)
        threaded = run_on_plane(
            "shards", program_factory, symmetrize, matching, n_workers=4
        )
        assert_runs_identical(serial, threaded)

    @pytest.mark.parametrize(
        "program_factory,symmetrize,matching", ALL_PROGRAMS_BOTH_PLANES
    )
    def test_shard_plane_process_workers(self, program_factory, symmetrize, matching):
        """``executor="processes"`` — shard state in shared memory,
        compute in spawned worker processes — must be bit-identical to
        serial execution for every shipped program (exact values AND
        per-superstep stats), including the order-sensitive ones."""
        serial = run_on_plane("shards", program_factory, symmetrize, matching)
        processes = run_on_plane(
            "shards", program_factory, symmetrize, matching,
            n_workers=2, executor="processes",
        )
        assert_runs_identical(serial, processes)

    def test_shard_plane_scalar_strategy_parity(self):
        sql = run_on_plane("sql", lambda: PageRank(iterations=5), compute_strategy="scalar")
        shards = run_on_plane(
            "shards", lambda: PageRank(iterations=5), compute_strategy="scalar"
        )
        assert_runs_identical(sql, shards)
        assert all(s.compute_path == "scalar" for s in shards.stats.supersteps)

    def test_shard_plane_without_combiner(self):
        sql = run_on_plane("sql", lambda: PageRank(iterations=5), use_combiner=False)
        shards = run_on_plane(
            "shards", lambda: PageRank(iterations=5), use_combiner=False
        )
        assert_runs_identical(sql, shards)

    def test_sync_policy_does_not_change_results(self):
        every = run_on_plane(
            "shards", lambda: ShortestPaths(source=0), superstep_sync="every"
        )
        halt = run_on_plane(
            "shards", lambda: ShortestPaths(source=0), superstep_sync="halt"
        )
        assert_runs_identical(every, halt)

    def test_single_partition_shard_plane(self):
        sql = run_on_plane("sql", lambda: ConnectedComponents(), True, n_partitions=1)
        shards = run_on_plane(
            "shards", lambda: ConnectedComponents(), True, n_partitions=1
        )
        assert_runs_identical(sql, shards)

    def test_ghost_messages_dropped_identically(self):
        src, dst, weights, n = _plane_graph_data(False)
        results = {}
        for plane in ("sql", "shards"):
            vx = Vertexica(config=VertexicaConfig(data_plane=plane, n_partitions=4))
            graph = vx.load_graph("g", src, dst, weights=weights, num_vertices=n)
            results[plane] = vx.run(graph, GhostMessenger())
        assert_runs_identical(results["sql"], results["shards"])
        assert 10_000 not in results["shards"].values


# ---------------------------------------------------------------------------
# Typed vector value plane: dense multi-column state vs the JSON codec
# ---------------------------------------------------------------------------
class TestVectorValuePlane:
    """The vector codec path (k typed FLOAT columns) must be bit-identical
    to the JSON-in-VARCHAR path it replaces — same factors, same
    superstep behavior — on both data planes and at several ranks."""

    @pytest.mark.parametrize("rank", [1, 3, 8])
    @pytest.mark.parametrize("plane", ["sql", "shards"])
    def test_cf_vector_vs_json_bit_identical(self, rank, plane):
        json_run = run_on_plane(
            plane,
            lambda: CollaborativeFiltering(iterations=4, rank=rank, codec="json"),
            symmetrize=True,
        )
        vector_run = run_on_plane(
            plane,
            lambda: CollaborativeFiltering(iterations=4, rank=rank, codec="vector"),
            symmetrize=True,
        )
        assert_runs_identical(json_run, vector_run)

    @pytest.mark.parametrize("rank", [2, 5])
    def test_cf_vector_cross_plane(self, rank):
        sql = run_on_plane(
            "sql", lambda: CollaborativeFiltering(iterations=4, rank=rank), True
        )
        shards = run_on_plane(
            "shards", lambda: CollaborativeFiltering(iterations=4, rank=rank), True
        )
        assert_runs_identical(sql, shards)

    def test_cf_vector_matches_giraph_baseline(self):
        # The scalar compute is the semantic reference on every engine:
        # the Giraph baseline (no codecs at all) must land on the same
        # factors as the vector-codec relational path.
        from repro.baselines.giraph import GiraphConfig, GiraphEngine

        src, dst, weights, n = _plane_graph_data(False)
        program = CollaborativeFiltering(iterations=4, rank=4)
        vx = Vertexica()
        graph = vx.load_graph(
            "g", src, dst, weights=weights, num_vertices=n, symmetrize=True
        )
        vertexica_run = vx.run(graph, program)

        from repro.core.runner import _symmetrized

        gsrc, gdst, gw = _symmetrized(
            np.asarray(src), np.asarray(dst), np.asarray(weights, dtype=np.float64)
        )
        engine = GiraphEngine(
            n, gsrc, gdst, gw,
            config=GiraphConfig(barrier_latency_s=0.0, serialize_messages=True),
        )
        giraph_run = engine.run(CollaborativeFiltering(iterations=4, rank=4))
        assert vertexica_run.values == giraph_run.values

    def test_message_senders_come_from_src_column(self):
        class SenderEcho(BatchVertexProgram):
            """Vertex value = sum of sender ids (vector payload unused)."""

            vertex_codec = vector_codec(2)
            message_codec = vector_codec(2)
            combiner = None

            def initial_value(self, vertex_id, out_degree, num_vertices):
                return [float(vertex_id), 0.0]

            def compute(self, vertex):
                if vertex.superstep == 0:
                    vertex.send_message_to_all_neighbors(vertex.value)
                else:
                    total = float(sum(vertex.message_senders))
                    vertex.modify_vertex_value([total, float(len(vertex.messages))])
                vertex.vote_to_halt()

            def compute_batch(self, batch):
                if batch.superstep == 0:
                    batch.send_to_all_neighbors(batch.values)
                else:
                    counts = batch.message_counts
                    segments = np.repeat(np.arange(batch.size), counts)
                    sums = np.bincount(
                        segments,
                        weights=batch.message_senders.astype(np.float64),
                        minlength=batch.size,
                    )
                    batch.set_values(
                        np.column_stack([sums, counts.astype(np.float64)])
                    )
                batch.vote_to_halt()

        scalar = run_with("scalar", SenderEcho, 13)
        batch = run_with("batch", SenderEcho, 13)
        assert_runs_identical(scalar, batch)
        shards = run_on_plane("shards", SenderEcho)
        sql = run_on_plane("sql", SenderEcho)
        assert_runs_identical(sql, shards)

    def test_vector_batch_kernel_parity(self):
        class ComponentMax(BatchVertexProgram):
            """Per-component max propagation over width-3 state: an
            order-insensitive vector kernel, so batch reduceat and the
            scalar loop must agree bitwise."""

            vertex_codec = vector_codec(3)
            message_codec = vector_codec(3)
            combiner = None
            max_supersteps = 4

            def initial_value(self, vertex_id, out_degree, num_vertices):
                rng = np.random.default_rng(vertex_id + 41)
                return rng.standard_normal(3).tolist()

            def compute(self, vertex):
                value = np.asarray(vertex.value, dtype=np.float64)
                if vertex.superstep > 0:
                    if not vertex.messages:
                        vertex.vote_to_halt()
                        return
                    incoming = np.asarray(vertex.messages, dtype=np.float64)
                    value = np.maximum(value, incoming.max(axis=0))
                    vertex.modify_vertex_value(value.tolist())
                vertex.send_message_to_all_neighbors(value.tolist())

            def compute_batch(self, batch):
                values = np.asarray(batch.values, dtype=np.float64)
                if batch.superstep > 0:
                    counts = batch.message_counts
                    has = counts > 0
                    if not bool(has.any()):
                        batch.vote_to_halt()
                        return
                    nonempty = np.flatnonzero(counts)
                    maxima = np.full_like(values, -np.inf)
                    maxima[nonempty] = np.maximum.reduceat(
                        batch.message_values, batch.msg_indptr[:-1][nonempty], axis=0
                    )
                    updated = np.maximum(values, maxima)
                    values = np.where(has[:, None], updated, values)
                    batch.set_values(values, mask=has)
                    batch.vote_to_halt(~has)
                    batch.send_to_all_neighbors(values, mask=has)
                    # halted-without-messages vertices sent nothing in the
                    # scalar path either (they returned before sending)
                else:
                    batch.send_to_all_neighbors(values)

        scalar = run_with("scalar", ComponentMax, 7, True)
        batch = run_with("batch", ComponentMax, 7, True)
        assert_runs_identical(scalar, batch)
        sql = run_on_plane("sql", ComponentMax, symmetrize=True)
        shards = run_on_plane("shards", ComponentMax, symmetrize=True)
        assert_runs_identical(sql, shards)

    def test_vector_codec_rejects_join_input_format(self):
        with pytest.raises(VertexicaError, match="join input format"):
            run_on_plane(
                "sql",
                lambda: CollaborativeFiltering(iterations=2, rank=2),
                symmetrize=True,
                input_strategy="join",
            )

    def test_vector_message_codec_rejects_join_input_format(self):
        # A vector *message* codec alone (scalar vertex value) must fail
        # the join strategy with the same clear up-front error, not a
        # confusing missing-column failure deep inside decode.
        class VectorMessages(VertexProgram):
            message_codec = vector_codec(3)

            def compute(self, vertex):
                vertex.vote_to_halt()

        with pytest.raises(VertexicaError, match="join input format") as excinfo:
            run_on_plane("sql", VectorMessages, input_strategy="join")
        assert "message codec" in str(excinfo.value)

    def test_vector_combiners_validate(self):
        # Numeric vector codecs are element-wise reducible; validate()
        # must admit them (the blunt rejection is gone).
        MultiSourceSSSP(sources=(0, 1)).validate()
        FeaturePropagation(iterations=2, width=3).validate()
        RandomWalkEmbeddings(iterations=2, dim=3).validate()

    def test_non_numeric_codec_rejects_combiner(self):
        class BadCombiner(VertexProgram):
            vertex_codec = JSON_CODEC
            message_codec = JSON_CODEC
            combiner = "SUM"

            def compute(self, vertex):  # pragma: no cover - never runs
                pass

        with pytest.raises(ProgramError, match="numeric message codec") as excinfo:
            BadCombiner().validate()
        # The error names the offending codec precisely.
        assert JSON_CODEC.name in str(excinfo.value)


# ---------------------------------------------------------------------------
# Element-wise vector combiners: combined runs must be bit-identical to
# uncombined runs on both planes and every executor
# ---------------------------------------------------------------------------
#: The embedding workload family — every program whose messages reduce
#: element-wise (MIN for distance vectors, SUM for feature/walk vectors).
VECTOR_COMBINER_PROGRAMS = [
    pytest.param(lambda: MultiSourceSSSP(sources=(0, 5, 11)), id="multi-sssp"),
    pytest.param(
        lambda: FeaturePropagation(iterations=4, width=5), id="feature-prop"
    ),
    pytest.param(
        lambda: RandomWalkEmbeddings(iterations=3, dim=4), id="rw-embeddings"
    ),
]


def assert_combined_equals_uncombined(combined, uncombined):
    """Values and per-superstep activity must match bitwise; message
    counts differ by design (that is the point of combining)."""
    assert combined.values == uncombined.values  # bit-identical
    assert len(combined.stats.supersteps) == len(uncombined.stats.supersteps)
    for c, u in zip(combined.stats.supersteps, uncombined.stats.supersteps):
        assert c.active_vertices == u.active_vertices
        assert c.vertex_updates == u.vertex_updates
        assert c.aggregated == u.aggregated
    # The message-volume counters: the same rows were staged, fewer were
    # delivered.
    assert (
        combined.stats.total_messages_precombine == uncombined.stats.total_messages
    )
    assert combined.stats.total_messages < uncombined.stats.total_messages
    assert combined.stats.messages_combined_away > 0
    assert uncombined.stats.messages_combined_away == 0


class TestVectorCombiners:
    """Width-k messages reduce element-wise inside the data plane; every
    reduction site runs the same float64 reduceat arithmetic, so the
    combiner must never change a single bit of any result."""

    @pytest.mark.parametrize("program_factory", VECTOR_COMBINER_PROGRAMS)
    @pytest.mark.parametrize("plane", ["sql", "shards"])
    def test_combined_bit_identical_to_uncombined(self, plane, program_factory):
        combined = run_on_plane(plane, program_factory)
        uncombined = run_on_plane(plane, program_factory, use_combiner=False)
        assert_combined_equals_uncombined(combined, uncombined)

    @pytest.mark.parametrize("program_factory", VECTOR_COMBINER_PROGRAMS)
    def test_combined_parity_across_thread_executor(self, program_factory):
        serial = run_on_plane("shards", program_factory)
        threaded = run_on_plane("shards", program_factory, n_workers=4)
        assert_runs_identical(serial, threaded)

    @pytest.mark.parametrize("program_factory", VECTOR_COMBINER_PROGRAMS)
    def test_combined_parity_across_process_executor(self, program_factory):
        serial = run_on_plane("shards", program_factory)
        processes = run_on_plane(
            "shards", program_factory, n_workers=2, executor="processes"
        )
        assert_runs_identical(serial, processes)

    @pytest.mark.parametrize("program_factory", VECTOR_COMBINER_PROGRAMS)
    def test_batch_scalar_parity(self, program_factory):
        # random_graph pads 8 isolated vertices: empty message segments
        # and degree-0 senders go through both compute paths.
        scalar = run_with("scalar", program_factory, 3)
        batch = run_with("batch", program_factory, 3)
        assert_runs_identical(scalar, batch)

    # -- the Giraph semantic baseline ---------------------------------
    def _giraph(self, program, n_workers):
        from repro.baselines.giraph import GiraphConfig, GiraphEngine

        src, dst, weights, n = _plane_graph_data(False)
        engine = GiraphEngine(
            n, src, dst, weights,
            config=GiraphConfig(n_workers=n_workers, barrier_latency_s=0.0),
        )
        return engine.run(program)

    def test_min_combiner_exact_on_giraph_any_worker_count(self):
        # Element-wise MIN is exact under any grouping, so sender-side
        # partial combining cannot perturb it — at any worker count the
        # combined Giraph run matches Vertexica bitwise.
        vertexica = run_on_plane("sql", lambda: MultiSourceSSSP(sources=(0, 5, 11)))
        for n_workers in (1, 4):
            combined = self._giraph(MultiSourceSSSP(sources=(0, 5, 11)), n_workers)
            uncombined_program = MultiSourceSSSP(sources=(0, 5, 11))
            uncombined_program.combiner = None
            uncombined = self._giraph(uncombined_program, n_workers)
            assert combined.values == uncombined.values
            assert combined.values == vertexica.values

    def test_sum_combiner_exact_on_giraph_single_worker(self):
        # With one worker the sender-side buffer holds whole inboxes in
        # delivery order, so SUM combining is the identical reduceat call
        # — bit-exact.
        for factory in (
            lambda: FeaturePropagation(iterations=4, width=5),
            lambda: RandomWalkEmbeddings(iterations=3, dim=4),
        ):
            combined = self._giraph(factory(), n_workers=1)
            uncombined_program = factory()
            uncombined_program.combiner = None
            uncombined = self._giraph(uncombined_program, n_workers=1)
            assert combined.values == uncombined.values

    def test_sum_combiner_giraph_multi_worker(self):
        # Multi-worker Giraph combines *partial* per-buffer groups
        # (sender-side, as real Giraph does), so SUM results agree with
        # the uncombined run only to float tolerance — while the shuffle
        # volume drops.
        combined = self._giraph(FeaturePropagation(iterations=4, width=5), 4)
        uncombined_program = FeaturePropagation(iterations=4, width=5)
        uncombined_program.combiner = None
        uncombined = self._giraph(uncombined_program, 4)
        for vid, value in combined.values.items():
            assert value == pytest.approx(uncombined.values[vid], abs=1e-12)
        assert combined.bytes_shuffled < uncombined.bytes_shuffled
        assert (
            combined.stats.total_messages
            < combined.stats.total_messages_precombine
        )

    def test_uncombined_giraph_matches_vertexica_exactly(self):
        # Matching worker/partition counts give identical delivery order,
        # so even order-sensitive SUM runs agree bitwise across engines.
        for factory in (
            lambda: FeaturePropagation(iterations=4, width=5),
            lambda: RandomWalkEmbeddings(iterations=3, dim=4),
        ):
            vertexica = run_on_plane("sql", factory)
            uncombined_program = factory()
            uncombined_program.combiner = None
            giraph = self._giraph(uncombined_program, n_workers=4)
            assert vertexica.values == giraph.values


# ---------------------------------------------------------------------------
# segment_* kernels: the public sorted-segment reduction helpers
# ---------------------------------------------------------------------------
def _random_segments(rng, n_segments, width=None):
    counts = rng.integers(0, 5, n_segments)
    indptr = np.concatenate([[0], np.cumsum(counts)])
    shape = (indptr[-1],) if width is None else (indptr[-1], width)
    return rng.standard_normal(shape), indptr


class TestSegmentKernels:
    def test_sum_matches_per_segment_numpy(self):
        rng = np.random.default_rng(5)
        values, indptr = _random_segments(rng, 40, width=3)
        out = segment_sum(values, indptr)
        for i in range(40):
            seg = values[indptr[i] : indptr[i + 1]]
            assert out[i] == pytest.approx(seg.sum(axis=0) if len(seg) else 0.0)

    def test_min_max_match_per_segment_numpy(self):
        rng = np.random.default_rng(6)
        values, indptr = _random_segments(rng, 30, width=4)
        lo, hi = segment_min(values, indptr), segment_max(values, indptr)
        for i in range(30):
            seg = values[indptr[i] : indptr[i + 1]]
            if len(seg):
                assert np.array_equal(lo[i], seg.min(axis=0))
                assert np.array_equal(hi[i], seg.max(axis=0))
            else:
                assert np.all(lo[i] == np.inf) and np.all(hi[i] == -np.inf)

    def test_empty_segments_yield_identities(self):
        values = np.ones((0, 2))
        indptr = np.zeros(5, dtype=np.int64)  # four empty segments
        assert np.array_equal(segment_sum(values, indptr), np.zeros((4, 2)))
        assert np.all(segment_min(values, indptr) == np.inf)
        assert np.all(segment_max(values, indptr) == -np.inf)
        assert np.all(np.isnan(segment_mean(values, indptr)))

    def test_single_member_segments_are_identity(self):
        rng = np.random.default_rng(7)
        values = rng.standard_normal((6, 3))
        indptr = np.arange(7)
        for kernel in (segment_sum, segment_min, segment_max, segment_mean):
            assert np.array_equal(kernel(values, indptr), values)

    def test_nan_propagates(self):
        values = np.array([[1.0, 2.0], [np.nan, 3.0], [4.0, 5.0]])
        indptr = np.array([0, 2, 3])
        for kernel in (segment_sum, segment_min, segment_max, segment_mean):
            out = kernel(values, indptr)
            assert np.isnan(out[0, 0])  # NaN lane poisons its segment
            assert not np.isnan(out[0, 1])
            assert not np.isnan(out[1]).any()

    def test_width_1_matches_1d(self):
        rng = np.random.default_rng(8)
        values, indptr = _random_segments(rng, 25)
        for kernel in (segment_sum, segment_min, segment_max, segment_mean):
            wide = kernel(values[:, None], indptr)
            flat = kernel(values, indptr)
            assert np.array_equal(wide[:, 0], flat, equal_nan=True)

    def test_sum_uses_combiner_reduceat_arithmetic(self):
        # The whole point of these kernels: the exact reduceat call the
        # data planes' combiners run, not bincount/pairwise-sum.
        rng = np.random.default_rng(9)
        values, indptr = _random_segments(rng, 20, width=2)
        nonempty = np.flatnonzero(np.diff(indptr))
        expected = np.add.reduceat(values, indptr[:-1][nonempty], axis=0)
        assert np.array_equal(segment_sum(values, indptr)[nonempty], expected)

    def test_mean_matches_sum_over_count(self):
        rng = np.random.default_rng(10)
        values, indptr = _random_segments(rng, 20, width=2)
        counts = np.diff(indptr)
        nonempty = counts > 0
        expected = segment_sum(values, indptr)[nonempty] / counts[nonempty, None]
        assert np.array_equal(segment_mean(values, indptr)[nonempty], expected)

    def test_rejects_non_tiling_segments(self):
        values = np.zeros((4, 2))
        with pytest.raises(ProgramError, match="tile"):
            segment_sum(values, np.array([0, 2]))  # stops short of len(values)
        with pytest.raises(ProgramError, match="tile"):
            segment_sum(values, np.array([1, 4]))  # does not start at 0
        with pytest.raises(ProgramError, match="non-decreasing"):
            segment_sum(values, np.array([0, 3, 2, 4]))

    def test_vertex_batch_2d_reductions_match_kernels(self):
        rng = np.random.default_rng(11)
        counts = np.array([3, 0, 1, 4])
        indptr = np.concatenate([[0], np.cumsum(counts)])
        messages = rng.standard_normal((int(indptr[-1]), 3))
        size = len(counts)
        batch = VertexBatch(
            ids=np.arange(size),
            values=np.zeros((size, 3)),
            values_valid=np.ones(size, dtype=bool),
            was_halted=np.zeros(size, dtype=bool),
            edge_indptr=np.zeros(size + 1, dtype=np.int64),
            edge_targets=np.empty(0, dtype=np.int64),
            edge_weights=np.empty(0, dtype=np.float64),
            msg_indptr=indptr,
            message_values=messages,
            message_valid=np.ones(len(messages), dtype=bool),
            superstep=1,
            num_vertices=size,
        )
        assert np.array_equal(batch.sum_messages(), segment_sum(messages, indptr))
        assert np.array_equal(batch.min_messages(), segment_min(messages, indptr))
        assert np.array_equal(batch.max_messages(), segment_max(messages, indptr))

    def test_vertex_batch_2d_reductions_skip_null_rows(self):
        messages = np.array([[1.0, -2.0], [5.0, 7.0], [3.0, 4.0]])
        valid = np.array([True, False, True])  # whole-vector NULL row
        indptr = np.array([0, 2, 3])
        batch = VertexBatch(
            ids=np.arange(2),
            values=np.zeros((2, 2)),
            values_valid=np.ones(2, dtype=bool),
            was_halted=np.zeros(2, dtype=bool),
            edge_indptr=np.zeros(3, dtype=np.int64),
            edge_targets=np.empty(0, dtype=np.int64),
            edge_weights=np.empty(0, dtype=np.float64),
            msg_indptr=indptr,
            message_values=messages,
            message_valid=valid,
            superstep=1,
            num_vertices=2,
        )
        assert np.array_equal(batch.sum_messages(), [[1.0, -2.0], [3.0, 4.0]])
        assert np.array_equal(batch.min_messages(), [[1.0, -2.0], [3.0, 4.0]])
        assert np.array_equal(batch.max_messages(), [[1.0, -2.0], [3.0, 4.0]])


class TestEdgeCases:
    def test_empty_graph_single_vertex(self):
        vx = Vertexica(config=VertexicaConfig(compute_strategy="batch"))
        graph = vx.load_graph("g", [], [], num_vertices=3)
        result = vx.run(graph, PageRank(iterations=2))
        # Dangling vertices keep (1-d)/N mass with no incoming rank.
        expected = (1.0 - 0.85) / 3
        assert result.values == {0: expected, 1: expected, 2: expected}

    def test_isolated_vertices_match(self):
        # All 8 padding vertices (ids 120..127) are isolated.
        scalar = run_with("scalar", lambda: ConnectedComponents(), 19, True)
        batch = run_with("batch", lambda: ConnectedComponents(), 19, True)
        for vid in range(120, 128):
            assert scalar.values[vid] == vid
            assert batch.values[vid] == vid
