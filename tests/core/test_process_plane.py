"""The process-parallel shard plane: shared-memory plumbing, fault-plan
propagation into worker processes, and config gating.

Bit-parity of ``executor="processes"`` against serial/threaded execution
for every shipped program lives in ``test_batch_parity.py``; this module
covers the machinery around it.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import Vertexica, VertexicaConfig, faults
from repro.core.faults import FaultPlan, FaultSpec, InjectedFault, InjectedKill
from repro.core.shmem import SharedArrayGroup
from repro.errors import VertexicaError
from repro.programs import PageRank, ShortestPaths


def _graph(vx: Vertexica, name: str = "g"):
    src = [i for i in range(40)] * 2
    dst = [(i * 7 + 1) % 40 for i in range(40)] + [(i * 3 + 2) % 40 for i in range(40)]
    return vx.load_graph(name, src, dst, num_vertices=40)


class TestSharedArrayGroup:
    def test_create_attach_round_trip(self):
        arrays = {
            "ids": np.arange(10, dtype=np.int64),
            "flags": np.array([True, False] * 5),
            "vals": np.linspace(0, 1, 20).reshape(10, 2),
        }
        group = SharedArrayGroup.create("vxtest", arrays)
        try:
            other = SharedArrayGroup.attach(group.descriptor)
            try:
                for field, array in arrays.items():
                    np.testing.assert_array_equal(other.arrays[field], array)
                # writes through one mapping are visible through the other
                group.arrays["ids"][0] = 99
                assert other.arrays["ids"][0] == 99
            finally:
                other.close()
        finally:
            group.unlink()

    def test_descriptor_pickles(self):
        group = SharedArrayGroup.create("vxtest", {"a": np.zeros(3)})
        try:
            descriptor = pickle.loads(pickle.dumps(group.descriptor))
            assert descriptor == group.descriptor
        finally:
            group.unlink()

    def test_object_dtype_rejected(self):
        with pytest.raises(ValueError, match="object dtype"):
            SharedArrayGroup.create("vxtest", {"bad": np.array(["x", "y"], dtype=object)})

    def test_empty_arrays_supported(self):
        group = SharedArrayGroup.create("vxtest", {"e": np.empty(0, dtype=np.int64)})
        try:
            assert len(group.arrays["e"]) == 0
        finally:
            group.unlink()

    def test_unlink_idempotent(self):
        group = SharedArrayGroup.create("vxtest", {"a": np.ones(4)})
        group.unlink()
        group.unlink()  # second unlink: no error


class TestInjectedExceptionPickling:
    """Faults raised inside a worker process cross the pipe by pickle;
    the injected exception types must round-trip with their metadata
    (the default exception reduce re-calls ``cls(formatted_message)``,
    which their keyword-only constructors reject)."""

    def test_injected_fault_round_trip(self):
        exc = InjectedFault("shard.compute", superstep=3, shard=1, transient=True)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, InjectedFault)
        assert (clone.site, clone.superstep, clone.shard, clone.transient) == (
            "shard.compute", 3, 1, True,
        )
        assert faults.is_transient(clone)

    def test_injected_kill_round_trip(self):
        exc = InjectedKill("storage.sync", superstep=2, shard=None)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, InjectedKill)
        assert not isinstance(clone, Exception)  # still tears through handlers
        assert (clone.site, clone.superstep) == ("storage.sync", 2)


class TestFaultPlanInWorkers:
    def test_transient_fault_trips_inside_worker_and_retries(self, vx):
        """The armed plan travels with the plane bootstrap, so a
        ``shard.compute`` fault fires inside the worker *process*; the
        in-task retry absorbs it and the run stays bit-identical."""
        g = _graph(vx)
        clean = vx.run(g, PageRank(iterations=4), data_plane="shards")
        plan = FaultPlan(
            [FaultSpec(site="shard.compute", kind="transient", superstep=2, times=1)]
        )
        with faults.injected(plan):
            faulted = vx.run(
                g, PageRank(iterations=4), data_plane="shards",
                n_workers=2, executor="processes", task_retries=2,
            )
        assert faulted.stats.retries >= 1
        assert clean.values == faulted.values

    def test_kill_inside_worker_tears_through(self, vx):
        g = _graph(vx)
        plan = FaultPlan([FaultSpec(site="shard.compute", kind="kill", superstep=1)])
        with faults.injected(plan):
            with pytest.raises(InjectedKill):
                vx.run(
                    g, PageRank(iterations=4), data_plane="shards",
                    n_workers=2, executor="processes", task_retries=2,
                )

    def test_deterministic_fault_fails_fast(self, vx):
        g = _graph(vx)
        plan = FaultPlan(
            [FaultSpec(site="shard.compute", kind="deterministic", superstep=1, times=9)]
        )
        with faults.injected(plan):
            with pytest.raises(InjectedFault) as excinfo:
                vx.run(
                    g, PageRank(iterations=4), data_plane="shards",
                    n_workers=2, executor="processes", task_retries=2,
                )
        assert not faults.is_transient(excinfo.value)


class TestExecutorConfig:
    def test_processes_requires_shard_plane(self):
        with pytest.raises(VertexicaError, match="data_plane='shards'"):
            VertexicaConfig(executor="processes").validated()

    def test_unknown_executor_rejected(self):
        with pytest.raises(VertexicaError, match="executor"):
            VertexicaConfig(executor="fibers").validated()

    def test_explicit_thread_and_serial_choices(self, vx):
        g = _graph(vx)
        serial = vx.run(g, ShortestPaths(source=0), data_plane="shards",
                        executor="serial", n_workers=4)
        threaded = vx.run(g, ShortestPaths(source=0), data_plane="shards",
                          executor="threads", n_workers=4)
        assert serial.values == threaded.values

    def test_single_worker_processes_degrades_to_serial(self, vx):
        """``n_workers=1`` under ``executor='processes'`` must not spawn
        anything (the executor serial-fallbacks) and still be correct."""
        g = _graph(vx)
        base = vx.run(g, PageRank(iterations=3), data_plane="shards")
        one = vx.run(g, PageRank(iterations=3), data_plane="shards",
                     executor="processes", n_workers=1)
        assert base.values == one.values

    def test_sync_halt_with_processes(self, vx):
        g = _graph(vx)
        every = vx.run(g, PageRank(iterations=3), data_plane="shards",
                       n_workers=2, executor="processes", superstep_sync="every")
        halt = vx.run(g, PageRank(iterations=3), data_plane="shards",
                      n_workers=2, executor="processes", superstep_sync="halt")
        assert every.values == halt.values
