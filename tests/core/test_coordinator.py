"""Tests for the coordinator stored procedure."""

import pytest

from repro.core import Vertexica, VertexicaConfig
from repro.core.api import Vertex
from repro.core.coordinator import Coordinator
from repro.core.program import VertexProgram
from repro.core.storage import GraphStorage
from repro.engine import Database
from repro.errors import VertexicaError
from repro.programs import PageRank, ShortestPaths


class NeverHalts(VertexProgram):
    """Pathological program: never votes halt, never messages."""

    def initial_value(self, vertex_id, out_degree, num_vertices):
        return 0.0

    def compute(self, vertex: Vertex) -> None:
        pass  # neither halts nor sends


class TwoStep(VertexProgram):
    """Counts its own supersteps via the vertex value."""

    def initial_value(self, vertex_id, out_degree, num_vertices):
        return 0.0

    def compute(self, vertex: Vertex) -> None:
        vertex.modify_vertex_value(vertex.value + 1.0)
        if vertex.superstep == 0:
            vertex.send_message_to_all_neighbors(1.0)
        vertex.vote_to_halt()


class TestTermination:
    def test_quiescence_all_halted_no_messages(self, vx):
        g = vx.load_graph("g", [0, 1], [1, 0])
        result = vx.run(g, TwoStep())
        # superstep 0 runs everyone; superstep 1 delivers messages; done.
        assert result.stats.n_supersteps == 2
        assert result.values == {0: 2.0, 1: 2.0}

    def test_max_supersteps_from_program(self, vx):
        g = vx.load_graph("g", [0, 1], [1, 0])
        program = PageRank(iterations=3)
        result = vx.run(g, program)
        assert result.stats.n_supersteps == 4  # iterations + final halt step

    def test_max_supersteps_override_via_config(self, vx):
        g = vx.load_graph("g", [0, 1], [1, 0])
        result = vx.run(g, PageRank(iterations=10), max_supersteps=2)
        assert result.stats.n_supersteps == 2

    def test_safety_limit_raises(self, db):
        storage = GraphStorage(db)
        handle = storage.load_graph("g", [0], [1])
        import repro.core.coordinator as coordinator_module

        coordinator = Coordinator(db, VertexicaConfig())
        original = coordinator_module.SUPERSTEP_SAFETY_LIMIT
        coordinator_module.SUPERSTEP_SAFETY_LIMIT = 5
        try:
            with pytest.raises(VertexicaError, match="safety limit"):
                coordinator.run(handle, NeverHalts())
        finally:
            coordinator_module.SUPERSTEP_SAFETY_LIMIT = original


class TestMetrics:
    def test_superstep_stats_recorded(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=3))
        stats = result.stats
        assert stats.program == "PageRank"
        assert stats.graph == "g"
        assert stats.total_seconds > 0
        first = stats.supersteps[0]
        assert first.superstep == 0
        assert first.active_vertices == 5
        assert first.messages_in == 0
        assert first.messages_out > 0
        assert stats.total_messages == sum(s.messages_out for s in stats.supersteps)

    def test_metrics_can_be_disabled(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=2), track_metrics=False)
        assert result.stats.supersteps == []
        assert result.stats.total_seconds > 0


class TestUpdatePathSelection:
    def test_forced_paths(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        for strategy in ("update", "replace"):
            result = vx.run(g, PageRank(iterations=2), update_strategy=strategy)
            paths = {s.update_path for s in result.stats.supersteps if s.vertex_updates}
            assert paths == {strategy}

    def test_auto_uses_replace_for_dense_updates(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        # PageRank updates every vertex every superstep; threshold 5% -> replace
        result = vx.run(g, PageRank(iterations=2), update_strategy="auto")
        assert result.stats.supersteps[0].update_path == "replace"

    def test_auto_uses_update_for_sparse_updates(self, vx):
        # A long path: late SSSP supersteps touch exactly one vertex,
        # under the 50% threshold -> in-place update path.
        n = 6
        g = vx.load_graph("chain", list(range(n - 1)), list(range(1, n)))
        result = vx.run(
            g, ShortestPaths(source=0), update_strategy="auto", replace_threshold=0.5
        )
        late = result.stats.supersteps[-2]
        assert late.update_path == "update"

    def test_both_paths_same_results(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        by_update = vx.run(g, PageRank(iterations=4), update_strategy="update").values
        by_replace = vx.run(g, PageRank(iterations=4), update_strategy="replace").values
        assert by_update == by_replace


class TestStoredProcedureWiring:
    def test_coordinator_registered_as_procedure(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        stats = vx.db.call("vertexica_run", g, PageRank(iterations=1), VertexicaConfig())
        assert stats.n_supersteps == 2
