"""Failure injection for the Vertexica runtime: a crashing vertex program
must not corrupt the graph's relational state — on either data plane."""

import pytest

from repro.core import Vertexica
from repro.core.api import Vertex
from repro.core.program import VertexProgram
from repro.programs import PageRank

# Every crash-consistency guarantee must hold on the staged SQL plane and
# on the shard-resident plane under both sync policies.
PLANES = [
    pytest.param({}, id="sql"),
    pytest.param(
        {"data_plane": "shards", "n_partitions": 3, "superstep_sync": "every"},
        id="shards-every",
    ),
    pytest.param(
        {"data_plane": "shards", "n_partitions": 3, "superstep_sync": "halt"},
        id="shards-halt",
    ),
]


class ExplodesAtSuperstep(VertexProgram):
    """Runs normally, then raises inside compute at a chosen superstep."""

    combiner = "SUM"

    def __init__(self, fail_at: int) -> None:
        self.fail_at = fail_at
        self.max_supersteps = 10

    def initial_value(self, vertex_id, out_degree, num_vertices):
        return 1.0

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep == self.fail_at:
            raise RuntimeError("vertex program exploded")
        vertex.send_message_to_all_neighbors(1.0)


@pytest.mark.parametrize("plane", PLANES)
class TestCrashConsistency:
    def test_exception_propagates(self, vx, tiny_edges, plane):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(RuntimeError, match="exploded"):
            vx.run(g, ExplodesAtSuperstep(fail_at=1), **plane)

    def test_tables_remain_consistent_after_crash(self, vx, tiny_edges, plane):
        """The worker crashes before any of its output is staged (SQL
        plane) or applied (shard plane), so the vertex table holds the
        last completed superstep's state and the graph remains fully
        analyzable."""
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(RuntimeError):
            vx.run(g, ExplodesAtSuperstep(fail_at=2), **plane)
        # vertex table: one consistent row per vertex
        rows = vx.sql("SELECT id, halted FROM g_vertex ORDER BY id").rows()
        assert [r[0] for r in rows] == [0, 1, 2, 3, 4]
        # and a fresh run on the same graph succeeds end-to-end
        result = vx.run(g, PageRank(iterations=3), **plane)
        assert len(result.values) == 5

    def test_crash_does_not_leak_worker_registrations(self, vx, tiny_edges, plane):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(RuntimeError):
            vx.run(g, ExplodesAtSuperstep(fail_at=0), **plane)
        # the transform slot is simply overwritten by the next run
        result = vx.run(g, PageRank(iterations=2), **plane)
        assert result.stats.n_supersteps == 3

    def test_crash_then_other_plane_still_agrees(self, vx, tiny_edges, plane):
        """After a crash on one plane, a rerun on the *other* plane
        produces the same result — the crash left no plane-specific
        residue in the tables."""
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(RuntimeError):
            vx.run(g, ExplodesAtSuperstep(fail_at=1), **plane)
        other = {} if plane else {"data_plane": "shards", "n_partitions": 3}
        here = vx.run(g, PageRank(iterations=3), **plane)
        there = vx.run(g, PageRank(iterations=3), **other)
        assert here.values == there.values
