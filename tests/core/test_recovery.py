"""Checkpoint/resume semantics: layout, torn-write discipline, manifest
validation, rollback-replay, and bit-identical resumed runs."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import CheckpointPolicy, Vertexica, VertexicaConfig, faults
from repro.core.faults import FaultPlan, FaultSpec, InjectedFault, InjectedKill
from repro.core.recovery import program_fingerprint
from repro.datasets.generators import power_law_graph
from repro.errors import RecoveryError, VertexicaError
from repro.programs import PageRank
from repro.programs.collaborative_filtering import CollaborativeFiltering

PLANES = [
    pytest.param({}, id="sql"),
    pytest.param(
        {"data_plane": "shards", "n_partitions": 3, "superstep_sync": "every"},
        id="shards-every",
    ),
    pytest.param(
        {"data_plane": "shards", "n_partitions": 3, "superstep_sync": "halt"},
        id="shards-halt",
    ),
]

GRAPH = power_law_graph("g", 60, 240, seed=7, weighted=True)


def fresh_run_setup():
    vx = Vertexica()
    g = vx.load_graph(
        "g", GRAPH.src, GRAPH.dst, weights=GRAPH.weights, num_vertices=60
    )
    return vx, g


class TestCheckpointPolicy:
    def test_due_arithmetic(self):
        policy = CheckpointPolicy(every=3)
        assert policy.enabled
        assert policy.due(0)  # baseline floor
        assert not policy.due(1) and not policy.due(2)
        assert policy.due(3) and policy.due(6)

    def test_disabled(self):
        policy = CheckpointPolicy()
        assert not policy.enabled
        assert not policy.due(0) and not policy.due(4)

    def test_config_validation(self):
        with pytest.raises(VertexicaError, match="checkpoint_every"):
            VertexicaConfig(checkpoint_every=0, checkpoint_dir="/tmp/x").validated()
        with pytest.raises(VertexicaError, match="checkpoint_dir"):
            VertexicaConfig(checkpoint_every=2).validated()
        with pytest.raises(VertexicaError, match="resume"):
            VertexicaConfig(resume=True).validated()
        with pytest.raises(VertexicaError, match="task_retries"):
            VertexicaConfig(task_retries=-1).validated()
        with pytest.raises(VertexicaError, match="retry_backoff"):
            VertexicaConfig(retry_backoff=-0.5).validated()


class TestProgramFingerprint:
    def test_stable_across_instances(self):
        assert program_fingerprint(PageRank(iterations=5)) == program_fingerprint(
            PageRank(iterations=5)
        )

    def test_param_changes_fingerprint(self):
        base = program_fingerprint(PageRank(iterations=5))
        assert program_fingerprint(PageRank(iterations=6)) != base
        assert program_fingerprint(PageRank(iterations=5, damping=0.9)) != base

    def test_class_changes_fingerprint(self):
        assert program_fingerprint(PageRank(iterations=5)) != program_fingerprint(
            CollaborativeFiltering(iterations=5)
        )


@pytest.mark.parametrize("plane", PLANES)
class TestCheckpointWrites:
    def test_layout_and_pruning(self, tmp_path, plane):
        vx, g = fresh_run_setup()
        result = vx.run(
            g,
            PageRank(iterations=6),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            **plane,
        )
        entries = sorted(os.listdir(tmp_path))
        # superseded snapshots pruned: only LATEST + the final checkpoint
        assert entries == ["LATEST", "ckpt-000006"]
        with open(tmp_path / "LATEST", encoding="utf-8") as fh:
            assert fh.read().strip() == "ckpt-000006"
        manifest = json.loads((tmp_path / "ckpt-000006" / "manifest.json").read_text())
        assert manifest["completed"] == 6
        assert manifest["graph"]["num_vertices"] == 60
        assert manifest["program"]["name"] == "PageRank"
        assert result.stats.checkpoint_seconds > 0.0
        # per-superstep accounting excludes checkpoint time from compute
        ckpt_steps = [
            s for s in result.stats.supersteps if s.checkpoint_seconds > 0.0
        ]
        assert ckpt_steps, "no superstep recorded checkpoint time"

    def test_checkpointing_does_not_change_results(self, tmp_path, plane):
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=6), **plane)
        vx2, g2 = fresh_run_setup()
        ck = vx2.run(
            g2,
            PageRank(iterations=6),
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
            **plane,
        )
        assert ck.values == base.values

    def test_resume_with_empty_directory_runs_fresh(self, tmp_path, plane):
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=4), **plane)
        vx2, g2 = fresh_run_setup()
        res = vx2.run(
            g2,
            PageRank(iterations=4),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path / "never-written"),
            resume=True,
            **plane,
        )
        assert res.values == base.values
        assert res.stats.recovered_supersteps == 0


@pytest.mark.parametrize("plane", PLANES)
class TestKillAndResume:
    def test_kill_then_resume_is_bit_identical(self, tmp_path, plane):
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=8), **plane)

        vx2, g2 = fresh_run_setup()
        site = "shard.compute" if plane else "storage.apply"
        plan = FaultPlan([FaultSpec(site=site, kind="kill", superstep=5)])
        with faults.injected(plan):
            with pytest.raises(InjectedKill):
                vx2.run(
                    g2,
                    PageRank(iterations=8),
                    checkpoint_every=2,
                    checkpoint_dir=str(tmp_path),
                    **plane,
                )
        assert plan.exhausted
        res = vx2.run(
            g2,
            PageRank(iterations=8),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
            **plane,
        )
        assert res.values == base.values
        assert res.stats.recovered_supersteps == 4

    def test_kill_mid_checkpoint_leaves_previous_durable(self, tmp_path, plane):
        """A kill between table files and the manifest produces a torn,
        unreferenced directory; resume falls back to the previous pointer
        and stays bit-identical."""
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=8), **plane)

        vx2, g2 = fresh_run_setup()
        plan = FaultPlan([FaultSpec(site="checkpoint.write", kind="kill", superstep=4)])
        with faults.injected(plan):
            with pytest.raises(InjectedKill):
                vx2.run(
                    g2,
                    PageRank(iterations=8),
                    checkpoint_every=2,
                    checkpoint_dir=str(tmp_path),
                    **plane,
                )
        # the torn ckpt-000004 exists but LATEST still names ckpt-000002
        with open(tmp_path / "LATEST", encoding="utf-8") as fh:
            assert fh.read().strip() == "ckpt-000002"
        res = vx2.run(
            g2,
            PageRank(iterations=8),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
            **plane,
        )
        assert res.values == base.values
        assert res.stats.recovered_supersteps == 2

    def test_cross_plane_resume(self, tmp_path, plane):
        """Checkpoints are plane-agnostic: kill on `plane`, resume on the
        other plane, still bit-identical (the repo's parity invariant)."""
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=8), **plane)

        vx2, g2 = fresh_run_setup()
        site = "shard.compute" if plane else "storage.apply"
        plan = FaultPlan([FaultSpec(site=site, kind="kill", superstep=5)])
        with faults.injected(plan):
            with pytest.raises(InjectedKill):
                vx2.run(
                    g2,
                    PageRank(iterations=8),
                    checkpoint_every=2,
                    checkpoint_dir=str(tmp_path),
                    **plane,
                )
        # same partition count on both planes: bit-identity is a parity
        # guarantee *per partitioning*, not across partition counts
        other = (
            {"n_partitions": 3}
            if plane
            else {"data_plane": "shards", "n_partitions": 4}
        )
        res = vx2.run(
            g2,
            PageRank(iterations=8),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
            **other,
        )
        assert res.values == base.values


class TestRetryAndRollback:
    def test_transient_shard_fault_retried_in_place(self):
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=6), data_plane="shards", n_partitions=3)
        vx2, g2 = fresh_run_setup()
        plan = FaultPlan(
            [FaultSpec(site="shard.compute", kind="transient", superstep=2, times=2)]
        )
        with faults.injected(plan):
            res = vx2.run(
                g2, PageRank(iterations=6), data_plane="shards", n_partitions=3
            )
        assert res.values == base.values
        assert res.stats.retries >= 2

    def test_transient_outside_task_seam_rolls_back_and_replays(self, tmp_path):
        vx, g = fresh_run_setup()
        base = vx.run(g, PageRank(iterations=6))
        vx2, g2 = fresh_run_setup()
        plan = FaultPlan([FaultSpec(site="storage.apply", kind="transient", superstep=3)])
        with faults.injected(plan):
            res = vx2.run(
                g2,
                PageRank(iterations=6),
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
            )
        assert res.values == base.values
        assert res.stats.retries == 1
        assert res.stats.recovered_supersteps == 2
        # replayed supersteps appear exactly once in the stats
        # (iterations=6 -> supersteps 0..6, the last detecting the halt)
        steps = [s.superstep for s in res.stats.supersteps]
        assert steps == sorted(set(steps)) == list(range(len(steps)))

    def test_deterministic_fault_fails_fast_after_rollback(self, tmp_path):
        vx, g = fresh_run_setup()
        plan = FaultPlan(
            [FaultSpec(site="storage.apply", kind="deterministic", superstep=3, times=99)]
        )
        with faults.injected(plan):
            with pytest.raises(InjectedFault) as excinfo:
                vx.run(
                    g,
                    PageRank(iterations=6),
                    checkpoint_every=2,
                    checkpoint_dir=str(tmp_path),
                )
        assert not excinfo.value.transient
        # only one firing: no retry budget was burned on a hopeless fault
        # (rollback happened, then the run failed fast)
        rows = vx.sql("SELECT id FROM g_vertex ORDER BY id").rows()
        assert len(rows) == 60  # tables rolled back to a consistent state
        res = vx.run(
            g,
            PageRank(iterations=6),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        base = Vertexica()
        gb = base.load_graph(
            "g", GRAPH.src, GRAPH.dst, weights=GRAPH.weights, num_vertices=60
        )
        assert res.values == base.run(gb, PageRank(iterations=6)).values

    def test_no_checkpointing_reraises(self):
        """Without a checkpoint policy, faults keep PR-1 crash semantics:
        propagate, tables stay consistent."""
        vx, g = fresh_run_setup()
        plan = FaultPlan([FaultSpec(site="storage.apply", kind="transient", superstep=2)])
        with faults.injected(plan):
            with pytest.raises(InjectedFault):
                vx.run(g, PageRank(iterations=6))
        rows = vx.sql("SELECT id FROM g_vertex ORDER BY id").rows()
        assert len(rows) == 60


class TestManifestValidation:
    def _checkpointed_dir(self, tmp_path, program=None):
        vx, g = fresh_run_setup()
        vx.run(
            g,
            program or PageRank(iterations=4),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        return tmp_path

    def test_program_fingerprint_mismatch(self, tmp_path):
        self._checkpointed_dir(tmp_path)
        vx, g = fresh_run_setup()
        with pytest.raises(RecoveryError, match="fingerprint"):
            vx.run(
                g,
                PageRank(iterations=5),  # different parameterization
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )

    def test_graph_mismatch(self, tmp_path):
        self._checkpointed_dir(tmp_path)
        vx = Vertexica()
        other = power_law_graph("g", 50, 200, seed=9, weighted=True)
        g = vx.load_graph("g", other.src, other.dst, weights=other.weights, num_vertices=50)
        with pytest.raises(RecoveryError, match="graph"):
            vx.run(
                g,
                PageRank(iterations=4),
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )

    def test_unreadable_manifest(self, tmp_path):
        self._checkpointed_dir(tmp_path)
        with open(tmp_path / "LATEST", encoding="utf-8") as fh:
            name = fh.read().strip()
        (tmp_path / name / "manifest.json").write_text("{ torn")
        vx, g = fresh_run_setup()
        with pytest.raises(RecoveryError, match="unreadable"):
            vx.run(
                g,
                PageRank(iterations=4),
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )

    def test_unreferenced_dirs_are_pruned_on_load(self, tmp_path):
        self._checkpointed_dir(tmp_path)
        torn = tmp_path / "ckpt-000099"
        torn.mkdir()
        (torn / "vertex.npz").write_bytes(b"garbage")
        vx, g = fresh_run_setup()
        vx.run(
            g,
            PageRank(iterations=4),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert not torn.exists()


class TestProgramState:
    def test_default_checkpoint_state_is_empty(self):
        prog = PageRank(iterations=3)
        assert prog.checkpoint_state() == {}
        prog.restore_state({})  # no-op, must not raise

    def test_cf_round_trips_rng_seed(self):
        prog = CollaborativeFiltering(iterations=4, rank=3, seed=11)
        state = prog.checkpoint_state()
        assert state == {"rng_seed": 11}
        prog.restore_state({"rng_seed": 13})
        assert prog.seed == 13

    def test_cf_vector_codec_resume_on_shards(self, tmp_path):
        """The hardest resume case: vector-valued vertices (rank-R factor
        rows), seeded SGD, halt-sync shard plane."""
        src = np.arange(0, 60, 2, dtype=np.int64)
        dst = src + 1
        weights = 1.0 + (np.arange(30, dtype=np.float64) % 9) / 2.0
        cfg = dict(data_plane="shards", n_partitions=4, superstep_sync="halt")

        def setup():
            vx = Vertexica()
            g = vx.load_graph("m", src, dst, weights=weights, num_vertices=66)
            return vx, g

        vx, g = setup()
        base = vx.run(g, CollaborativeFiltering(iterations=6, rank=3, seed=11), **cfg)
        vx2, g2 = setup()
        plan = FaultPlan([FaultSpec(site="shard.compute", kind="kill", superstep=4)])
        with faults.injected(plan):
            with pytest.raises(InjectedKill):
                vx2.run(
                    g2,
                    CollaborativeFiltering(iterations=6, rank=3, seed=11),
                    checkpoint_every=2,
                    checkpoint_dir=str(tmp_path),
                    **cfg,
                )
        res = vx2.run(
            g2,
            CollaborativeFiltering(iterations=6, rank=3, seed=11),
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
            **cfg,
        )
        assert res.values == base.values
