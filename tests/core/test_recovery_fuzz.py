"""Kill-and-resume fuzzing: for every shipped program, on every data
plane, kill the run at a seeded random site/superstep, resume it, and
require the result to be bit-identical to an uninterrupted run.

Seeds come from the ``RECOVERY_FUZZ_SEEDS`` env var (comma-separated
ints; CI sweeps a wider range than the default quick pair).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Same-directory import (pytest prepend mode): reuse the parity suite's
# program matrix and graph fixtures so the fuzzer always covers exactly
# the shipped-program set.
from test_input_format_parity import ALL_PROGRAMS, _graph_data

from repro.core import Vertexica, faults
from repro.core.faults import FaultPlan, FaultSpec, InjectedKill

SEEDS = [int(s) for s in os.environ.get("RECOVERY_FUZZ_SEEDS", "0,1").split(",") if s]

#: plane label -> (run kwargs, kill sites that are guaranteed to trip).
#: Sites with ``superstep=None`` wildcards fire at their first
#: opportunity; per-superstep sites get a pinned superstep below.
PLANES = {
    "sql": ({}, ["storage.apply", "checkpoint.write"]),
    "shards-every": (
        {"data_plane": "shards", "superstep_sync": "every"},
        ["shard.compute", "shard.route", "storage.sync", "checkpoint.write"],
    ),
    "shards-halt": (
        {"data_plane": "shards", "superstep_sync": "halt"},
        ["shard.compute", "shard.route", "storage.sync", "checkpoint.write"],
    ),
}

#: sites that exist at every superstep and accept a pinned superstep;
#: the rest must stay wildcard to be guaranteed to fire (e.g.
#: ``storage.sync`` only runs at checkpoint boundaries under halt sync).
_PINNABLE = {"storage.apply", "shard.compute", "shard.route"}


def _setup(program_factory, symmetrize, matching):
    src, dst, weights = _graph_data(matching)
    vx = Vertexica()
    graph = vx.load_graph(
        "g",
        src,
        dst,
        weights=weights,
        num_vertices=(66 if matching else 96),
        symmetrize=symmetrize,
    )
    return vx, graph


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("plane", sorted(PLANES))
@pytest.mark.parametrize("program_factory,symmetrize,matching", ALL_PROGRAMS)
def test_kill_and_resume_bit_identical(
    seed, plane, program_factory, symmetrize, matching, tmp_path
):
    cfg, sites = PLANES[plane]
    cfg = dict(cfg, n_partitions=4)

    # Uninterrupted baseline with the same plane config.
    vx, graph = _setup(program_factory, symmetrize, matching)
    baseline = vx.run(graph, program_factory(), **cfg)
    n_supersteps = baseline.stats.n_supersteps

    # Seeded kill: pick a site, and (where pinnable) a superstep inside
    # the run, so the kill is guaranteed to fire.
    rng = np.random.default_rng([seed, sorted(PLANES).index(plane), n_supersteps])
    site = sites[int(rng.integers(len(sites)))]
    superstep = (
        int(rng.integers(n_supersteps)) if site in _PINNABLE else None
    )
    plan = FaultPlan([FaultSpec(site=site, kind="kill", superstep=superstep)])

    vx2, graph2 = _setup(program_factory, symmetrize, matching)
    with faults.injected(plan):
        with pytest.raises(InjectedKill):
            vx2.run(
                graph2,
                program_factory(),
                checkpoint_every=2,
                checkpoint_dir=str(tmp_path),
                **cfg,
            )
    assert plan.fired, f"kill at {site!r} superstep={superstep} never fired"

    # Resume the killed run in the same session: bit-identical values,
    # aggregates, and superstep count.
    resumed = vx2.run(
        graph2,
        program_factory(),
        checkpoint_every=2,
        checkpoint_dir=str(tmp_path),
        resume=True,
        **cfg,
    )
    assert resumed.values == baseline.values
    # the resumed run replays exactly the supersteps after the restored
    # checkpoint, each exactly once
    recovered = resumed.stats.recovered_supersteps
    assert recovered + resumed.stats.n_supersteps == n_supersteps
    steps = [s.superstep for s in resumed.stats.supersteps]
    assert steps == list(range(recovered, n_supersteps))
