"""Tests for the vertex API surface."""

import pytest

from repro.core.api import OutEdge, Vertex
from repro.errors import ProgramError


def make_vertex(**overrides) -> Vertex:
    defaults = dict(
        vertex_id=3,
        value=1.5,
        out_edges=[OutEdge(4, 2.0), OutEdge(5, 1.0)],
        messages=[0.5, 0.25],
        superstep=2,
        num_vertices=10,
        halted=False,
    )
    defaults.update(overrides)
    return Vertex(**defaults)


class TestReads:
    def test_basic_accessors(self):
        v = make_vertex()
        assert v.id == 3
        assert v.value == 1.5
        assert v.superstep == 2
        assert v.num_vertices == 10
        assert v.out_degree == 2
        assert v.messages == (0.5, 0.25)
        assert v.out_edges[0].target == 4
        assert not v.was_halted

    def test_paper_spelling_aliases(self):
        v = make_vertex()
        assert v.getVertexValue() == v.get_vertex_value() == 1.5
        assert v.getMessages() == v.messages
        assert v.getOutEdges() == v.out_edges


class TestWritesAreBuffered:
    def test_modify_value(self):
        v = make_vertex()
        v.modify_vertex_value(9.0)
        changed, value = v.collect_value_update()
        assert changed and value == 9.0

    def test_unmodified_value_flagged(self):
        v = make_vertex()
        changed, value = v.collect_value_update()
        assert not changed and value == 1.5

    def test_send_message(self):
        v = make_vertex()
        v.send_message(7, 0.125)
        v.sendMessage(8, 0.25)
        assert v.collect_outbox() == [(7, 0.125), (8, 0.25)]

    def test_send_to_all_neighbors(self):
        v = make_vertex()
        v.send_message_to_all_neighbors("hi")
        assert v.collect_outbox() == [(4, "hi"), (5, "hi")]

    def test_send_message_validates_target(self):
        v = make_vertex()
        with pytest.raises(ProgramError, match="int vertex id"):
            v.send_message("four", 1.0)

    def test_vote_to_halt(self):
        v = make_vertex()
        assert not v.collect_halt_vote()
        v.vote_to_halt()
        assert v.collect_halt_vote()


class TestOutEdge:
    def test_defaults(self):
        edge = OutEdge(9)
        assert edge.target == 9 and edge.weight == 1.0

    def test_frozen(self):
        with pytest.raises(Exception):
            OutEdge(1).target = 2
