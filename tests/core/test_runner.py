"""Tests for the Vertexica facade."""

import numpy as np
import pytest

from repro.core import Vertexica, VertexicaConfig
from repro.programs import ConnectedComponents, PageRank


class TestLoadGraph:
    def test_symmetrize_adds_reverse_edges(self, vx):
        g = vx.load_graph("g", [0, 1], [1, 2], symmetrize=True)
        assert g.num_edges == 4
        rows = vx.sql("SELECT src, dst FROM g_edge ORDER BY src, dst").rows()
        assert (1, 0) in rows and (2, 1) in rows

    def test_symmetrize_dedups_existing_reverse(self, vx):
        g = vx.load_graph("g", [0, 1], [1, 0], symmetrize=True)
        assert g.num_edges == 2

    def test_symmetrize_preserves_weights(self, vx):
        vx.load_graph("g", [0], [1], weights=[3.5], symmetrize=True)
        rows = vx.sql("SELECT src, dst, weight FROM g_edge ORDER BY src").rows()
        assert rows == [(0, 1, 3.5), (1, 0, 3.5)]

    def test_graph_reattach_by_name(self, vx):
        vx.load_graph("g", [0], [1])
        handle = vx.graph("g")
        assert handle.num_edges == 1

    def test_run_accepts_graph_name(self, vx, tiny_edges):
        src, dst = tiny_edges
        vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run("g", PageRank(iterations=2))
        assert len(result.values) == 5


class TestResult:
    def test_top_k(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=5))
        top = result.top(2)
        ranks = sorted(result.values.values(), reverse=True)
        assert [value for _, value in top] == ranks[:2]

    def test_top_k_ascending(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=5))
        bottom = result.top(1, reverse=False)
        assert bottom[0][1] == min(result.values.values())

    def test_top_k_non_numeric_values(self):
        from repro.core.metrics import RunStats
        from repro.core.runner import VertexicaResult

        result = VertexicaResult(
            values={1: "blue", 2: "amber", 3: "cyan", 4: "amber", 5: None},
            stats=RunStats(program="p", graph="g"),
        )
        # String labels cannot be negated; both directions must still work,
        # with ties broken by ascending vertex id.
        assert result.top(2) == [(3, "cyan"), (1, "blue")]
        assert result.top(3, reverse=False) == [(2, "amber"), (4, "amber"), (1, "blue")]

    def test_top_k_numeric_ties_broken_by_id(self):
        from repro.core.metrics import RunStats
        from repro.core.runner import VertexicaResult

        result = VertexicaResult(
            values={4: 1.0, 2: 1.0, 7: 0.5},
            stats=RunStats(program="p", graph="g"),
        )
        assert result.top(3) == [(2, 1.0), (4, 1.0), (7, 0.5)]
        assert result.top(3, reverse=False) == [(7, 0.5), (2, 1.0), (4, 1.0)]


class TestConfigPlumbing:
    def test_constructor_config_used(self, tiny_edges):
        src, dst = tiny_edges
        vx = Vertexica(config=VertexicaConfig(input_strategy="join"))
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, PageRank(iterations=2))
        assert len(result.values) == 5

    def test_override_does_not_mutate_base(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        vx.run(g, PageRank(iterations=1), n_partitions=9)
        assert vx.config.n_partitions == 4  # default untouched

    def test_invalid_override_rejected(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(Exception):
            vx.run(g, PageRank(iterations=1), input_strategy="nope")


class TestSqlAccess:
    def test_post_processing_in_sql(self, vx, tiny_edges):
        """§3.4: relational post-processing of graph-algorithm output."""
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        vx.run(g, ConnectedComponents())
        histogram = vx.sql(
            "SELECT value AS comp, COUNT(*) AS size FROM g_vertex "
            "GROUP BY value ORDER BY size DESC"
        ).rows()
        assert histogram[0][1] == 5  # tiny graph is one component
