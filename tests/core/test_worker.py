"""Tests for the worker transform UDF (both input formats)."""

import pytest

from repro.core.api import Vertex
from repro.core.program import VertexProgram
from repro.core.storage import GraphStorage
from repro.core.worker import VertexWorker, worker_output_schema
from repro.engine import Database
from repro.errors import ProgramError
from repro.programs import PageRank


class EchoProgram(VertexProgram):
    """Sends its value to every neighbor, records messages seen."""

    def __init__(self):
        self.seen: dict[int, list] = {}

    def compute(self, vertex: Vertex) -> None:
        self.seen[vertex.id] = list(vertex.messages)
        vertex.send_message_to_all_neighbors(float(vertex.id))
        vertex.vote_to_halt()


@pytest.fixture
def staged(db: Database):
    """Graph 0->1, 0->2, 1->2 with one pending message to vertex 0."""
    storage = GraphStorage(db)
    handle = storage.load_graph("g", [0, 0, 1], [1, 2, 2])
    program = EchoProgram()
    storage.setup_run(handle, program)
    db.execute("INSERT INTO g_message VALUES (2, 0, 7.5)")
    return db, storage, handle, program


class TestUnionFormat:
    def test_parses_vertices_edges_messages(self, staged):
        db, storage, handle, program = staged
        worker = VertexWorker(program, superstep=1, num_vertices=3)
        db.register_transform("w", worker, worker.schema)
        out = db.run_transform(
            "w", storage.union_input_sql(handle, program),
            partition_by=("vid",), order_by=("vid", "kind"),
        )
        assert program.seen[0] == [7.5]
        # vertex 0 has out-degree 2 -> 2 messages; plus 3 vertex updates...
        kinds = out.column("kind").to_list()
        assert kinds.count(1) == 2 + 1 + 0  # v0 two edges, v1 one, v2 none

    def test_superstep0_runs_all_with_no_messages(self, staged):
        db, storage, handle, program = staged
        db.execute("TRUNCATE TABLE g_message")
        worker = VertexWorker(program, superstep=0, num_vertices=3)
        db.register_transform("w", worker, worker.schema)
        db.run_transform("w", storage.union_input_sql(handle, program),
                         partition_by=("vid",), order_by=("vid", "kind"))
        assert worker.vertices_ran == 3
        assert program.seen == {0: [], 1: [], 2: []}

    def test_halted_without_messages_skipped(self, staged):
        db, storage, handle, program = staged
        db.execute("UPDATE g_vertex SET halted = TRUE")
        worker = VertexWorker(program, superstep=2, num_vertices=3)
        db.register_transform("w", worker, worker.schema)
        db.run_transform("w", storage.union_input_sql(handle, program),
                         partition_by=("vid",), order_by=("vid", "kind"))
        # only vertex 0 has a message; others halted with empty inbox
        assert worker.vertices_ran == 1

    def test_message_to_missing_vertex_dropped(self, staged):
        db, storage, handle, program = staged
        db.execute("INSERT INTO g_message VALUES (0, 99, 1.0)")
        worker = VertexWorker(program, superstep=1, num_vertices=3)
        db.register_transform("w", worker, worker.schema)
        db.run_transform("w", storage.union_input_sql(handle, program),
                         partition_by=("vid",), order_by=("vid", "kind"))
        assert worker.messages_dropped == 1

    def test_partition_count_does_not_change_results(self, staged):
        db, storage, handle, program = staged
        results = []
        for n_partitions in (1, 2, 8):
            worker = VertexWorker(program, superstep=1, num_vertices=3)
            db.register_transform("w", worker, worker.schema)
            out = db.run_transform(
                "w", storage.union_input_sql(handle, program),
                partition_by=("vid",), order_by=("vid", "kind"),
                n_partitions=n_partitions,
            )
            results.append(sorted(out.to_rows()))
        assert results[0] == results[1] == results[2]


class TestJoinFormat:
    def test_join_format_matches_union_format(self, staged):
        db, storage, handle, program = staged
        union_worker = VertexWorker(program, superstep=1, num_vertices=3, input_format="union")
        db.register_transform("wu", union_worker, union_worker.schema)
        union_out = db.run_transform(
            "wu", storage.union_input_sql(handle, program),
            partition_by=("vid",), order_by=("vid", "kind"),
        )
        join_worker = VertexWorker(program, superstep=1, num_vertices=3, input_format="join")
        db.register_transform("wj", join_worker, join_worker.schema)
        join_out = db.run_transform(
            "wj", storage.join_input_sql(handle),
            partition_by=("vid",), order_by=("vid", "edst", "msrc"),
        )
        assert sorted(union_out.to_rows()) == sorted(join_out.to_rows())

    def test_join_format_dedups_messages(self, db):
        # vertex 0: 3 out-edges x 2 messages = 6 combo rows, but compute
        # must see exactly 2 messages and 3 edges.
        storage = GraphStorage(db)
        handle = storage.load_graph("g", [0, 0, 0], [1, 2, 3])
        program = EchoProgram()
        storage.setup_run(handle, program)
        db.execute("INSERT INTO g_message VALUES (1, 0, 1.0), (2, 0, 2.0)")
        worker = VertexWorker(program, superstep=1, num_vertices=4, input_format="join")
        db.register_transform("w", worker, worker.schema)
        out = db.run_transform(
            "w", storage.join_input_sql(handle),
            partition_by=("vid",), order_by=("vid", "edst", "msrc"),
        )
        assert sorted(program.seen[0]) == [1.0, 2.0]
        messages_from_zero = [
            r for r in out.to_rows() if r[0] == 1 and r[1] == 0
        ]
        assert len(messages_from_zero) == 3  # one per out-edge

    def test_unknown_format_rejected(self):
        with pytest.raises(ProgramError, match="input format"):
            VertexWorker(PageRank(iterations=1), 0, 3, input_format="csv")


class TestOutputSchema:
    def test_schema_shape(self):
        schema = worker_output_schema()
        assert schema.names() == ["kind", "vid", "dst", "f1", "s1", "halted"]
