"""Tests for Pregel-style global aggregators (extension).

Aggregator partials flow through the worker-output staging table and are
reduced with SQL GROUP BY — the same state-through-tables discipline as
vertex values and messages.
"""

import numpy as np
import pytest

from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.core import Vertexica
from repro.core.api import Vertex
from repro.core.program import VertexProgram
from repro.errors import BaselineError, ProgramError
from repro.programs import AdaptivePageRank, PageRank
from repro.programs.pagerank import reference_pagerank


class CountingProgram(VertexProgram):
    """Aggregates a SUM of ones and a MAX of vertex ids each superstep."""

    aggregators = {"ran": "SUM", "max_id": "MAX"}

    def initial_value(self, vertex_id, out_degree, num_vertices):
        return 0.0

    def compute(self, vertex: Vertex) -> None:
        vertex.aggregate("ran", 1.0)
        vertex.aggregate("max_id", float(vertex.id))
        if vertex.superstep == 0:
            vertex.send_message_to_all_neighbors(1.0)
        # expose the previous superstep's SUM through the vertex value
        seen = vertex.aggregated("ran")
        if seen is not None:
            vertex.modify_vertex_value(float(seen))
        vertex.vote_to_halt()


class UndeclaredAggregator(VertexProgram):
    def initial_value(self, vertex_id, out_degree, num_vertices):
        return 0.0

    def compute(self, vertex: Vertex) -> None:
        vertex.aggregate("ghost", 1.0)
        vertex.vote_to_halt()


class TestVertexicaAggregators:
    def test_values_visible_next_superstep(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, CountingProgram())
        # superstep 0: all 5 run; receivers at superstep 1 see ran == 5.0
        receivers = set(dst)
        for v in receivers:
            assert result.values[v] == 5.0

    def test_stats_record_aggregates(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, CountingProgram())
        first = dict(result.stats.supersteps[0].aggregated)
        assert first == {"ran": 5.0, "max_id": 4.0}

    def test_partition_count_invariant(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        a = vx.run(g, CountingProgram(), n_partitions=1).stats.supersteps[0]
        b = vx.run(g, CountingProgram(), n_partitions=8).stats.supersteps[0]
        assert a.aggregated == b.aggregated

    def test_undeclared_aggregator_rejected(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(ProgramError, match="undeclared aggregator"):
            vx.run(g, UndeclaredAggregator())

    def test_bad_aggregator_op_rejected(self, vx, tiny_edges):
        class BadOp(VertexProgram):
            aggregators = {"x": "MEDIAN"}

            def compute(self, vertex):  # pragma: no cover
                pass

        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        with pytest.raises(ProgramError, match="unknown op"):
            vx.run(g, BadOp())


class TestGiraphAggregators:
    def test_same_values_as_vertexica(self, tiny_edges):
        src, dst = tiny_edges
        vx = Vertexica()
        g = vx.load_graph("g", src, dst, num_vertices=5)
        vertexica_stats = vx.run(g, CountingProgram()).stats
        engine = GiraphEngine(
            5, src, dst, config=GiraphConfig(barrier_latency_s=0.0)
        )
        giraph_stats = engine.run(CountingProgram()).stats
        assert (
            vertexica_stats.supersteps[0].aggregated
            == giraph_stats.supersteps[0].aggregated
        )

    def test_undeclared_rejected(self, tiny_edges):
        src, dst = tiny_edges
        engine = GiraphEngine(
            5, src, dst, config=GiraphConfig(barrier_latency_s=0.0)
        )
        with pytest.raises(BaselineError, match="undeclared"):
            engine.run(UndeclaredAggregator())


class TestAdaptivePageRank:
    def test_converges_to_fixed_iteration_answer(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        adaptive = vx.run(g, AdaptivePageRank(epsilon=1e-12)).values
        oracle = reference_pagerank(5, np.array(src), np.array(dst), iterations=80)
        for v in range(5):
            assert adaptive[v] == pytest.approx(oracle[v], abs=1e-9)

    def test_loose_epsilon_stops_earlier(self, vx, small_graph):
        g = vx.load_graph(
            small_graph.name, small_graph.src, small_graph.dst,
            num_vertices=small_graph.num_vertices,
        )
        loose = vx.run(g, AdaptivePageRank(epsilon=1e-3)).stats.n_supersteps
        tight = vx.run(g, AdaptivePageRank(epsilon=1e-10)).stats.n_supersteps
        assert loose < tight

    def test_terminates_by_halting_not_cap(self, vx, tiny_edges):
        src, dst = tiny_edges
        g = vx.load_graph("g", src, dst, num_vertices=5)
        result = vx.run(g, AdaptivePageRank(epsilon=1e-6, superstep_cap=500))
        assert result.stats.n_supersteps < 500

    def test_matches_on_giraph(self, tiny_edges):
        src, dst = tiny_edges
        vx = Vertexica()
        g = vx.load_graph("g", src, dst, num_vertices=5)
        on_vertexica = vx.run(g, AdaptivePageRank(epsilon=1e-9)).values
        engine = GiraphEngine(
            5, src, dst, config=GiraphConfig(barrier_latency_s=0.0)
        )
        on_giraph = engine.run(AdaptivePageRank(epsilon=1e-9)).values
        for v in range(5):
            assert on_vertexica[v] == pytest.approx(on_giraph[v], abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePageRank(epsilon=0.0)
        with pytest.raises(ValueError):
            AdaptivePageRank(damping=1.5)
