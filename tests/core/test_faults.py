"""Unit tests for the deterministic fault-injection harness and the
shared retry classifier/executor (`repro.core.faults`)."""

from __future__ import annotations

import errno
import json
from urllib.error import HTTPError, URLError

import pytest

from repro.core import faults
from repro.core.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedKill,
    is_transient,
    retry_call,
)
from repro.errors import VertexicaError


class TestFaultSpec:
    def test_defaults_and_matching(self):
        spec = FaultSpec(site="shard.compute")
        assert spec.kind == "transient" and spec.times == 1
        assert spec.matches("shard.compute", superstep=3, shard=1)
        assert not spec.matches("shard.route", superstep=3, shard=1)

    def test_wildcards_vs_pinned(self):
        spec = FaultSpec(site="storage.apply", superstep=2, shard=0)
        assert spec.matches("storage.apply", superstep=2, shard=0)
        assert not spec.matches("storage.apply", superstep=1, shard=0)
        assert not spec.matches("storage.apply", superstep=2, shard=1)
        # a site that reports no shard never matches a shard-pinned spec
        assert not spec.matches("storage.apply", superstep=2, shard=None)

    def test_validation(self):
        with pytest.raises(VertexicaError):
            FaultSpec(site="not.a.site")
        with pytest.raises(VertexicaError):
            FaultSpec(site="shard.compute", kind="explosive")
        with pytest.raises(VertexicaError):
            FaultSpec(site="shard.compute", times=0)


class TestFaultPlan:
    def test_budget_exhausts(self):
        plan = FaultPlan([FaultSpec(site="shard.compute", times=2)])
        with faults.injected(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.trip("shard.compute", superstep=0, shard=0)
            # budget spent: the site is now clean
            faults.trip("shard.compute", superstep=0, shard=0)
        assert plan.exhausted
        assert len(plan.fired) == 2

    def test_kind_selects_exception(self):
        for kind, exc_type, transient in (
            ("transient", InjectedFault, True),
            ("deterministic", InjectedFault, False),
            ("kill", InjectedKill, None),
        ):
            plan = FaultPlan([FaultSpec(site="storage.sync", kind=kind)])
            with faults.injected(plan):
                with pytest.raises(exc_type) as excinfo:
                    faults.trip("storage.sync")
            if transient is not None:
                assert excinfo.value.transient is transient

    def test_no_active_plan_is_noop(self):
        faults.trip("shard.compute", superstep=99)  # must not raise

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(site="shard.compute", kind="kill", superstep=3, shard=1),
                FaultSpec(site="checkpoint.write", times=2),
            ]
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs == plan.specs

    def test_from_json_seed_form(self):
        a = FaultPlan.from_json(json.dumps({"seed": 7}))
        b = FaultPlan.from_json(json.dumps({"seed": 7}))
        c = FaultPlan.from_json(json.dumps({"seed": 8}))
        assert a.specs == b.specs
        assert a.specs != c.specs

    def test_from_seed_deterministic(self):
        a = FaultPlan.from_seed(42, n_faults=3, kinds=("kill", "transient"))
        b = FaultPlan.from_seed(42, n_faults=3, kinds=("kill", "transient"))
        assert a.specs == b.specs
        assert len(a.specs) == 3
        for spec in a.specs:
            assert spec.site in faults.SITES
            assert spec.kind in ("kill", "transient")


class TestIsTransient:
    def test_injected_attr_wins(self):
        assert is_transient(InjectedFault("shard.compute", 0, None, transient=True))
        assert not is_transient(
            InjectedFault("shard.compute", 0, None, transient=False)
        )

    def test_http_statuses(self):
        def http_error(code):
            return HTTPError("http://x", code, "boom", hdrs=None, fp=None)

        assert is_transient(http_error(503))
        assert is_transient(http_error(429))
        assert not is_transient(http_error(404))

    def test_network_and_os_errors(self):
        assert is_transient(URLError("dns wobble"))
        assert is_transient(ConnectionResetError())
        assert is_transient(TimeoutError())
        assert is_transient(OSError(errno.ECONNRESET, "reset"))
        assert not is_transient(OSError(errno.ENOENT, "missing"))
        assert not is_transient(ValueError("deterministic"))

    def test_kill_is_never_transient(self):
        assert not is_transient(InjectedKill("shard.compute", 0, None))


class TestRetryCall:
    def test_retries_transient_then_succeeds(self):
        sleeps: list[float] = []
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise ConnectionResetError("flake")
            return "ok"

        assert retry_call(flaky, retries=3, backoff=0.5, sleep=sleeps.append) == "ok"
        assert calls[0] == 3
        # capped deterministic exponential backoff, no jitter
        assert sleeps == [0.5, 1.0]

    def test_backoff_cap(self):
        sleeps: list[float] = []
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 5:
                raise TimeoutError()
            return calls[0]

        retry_call(flaky, retries=4, backoff=1.0, backoff_cap=2.0, sleep=sleeps.append)
        assert sleeps == [1.0, 2.0, 2.0, 2.0]

    def test_deterministic_fails_immediately(self):
        calls = [0]

        def broken():
            calls[0] += 1
            raise ValueError("always")

        with pytest.raises(ValueError):
            retry_call(broken, retries=5, backoff=0.0, sleep=lambda s: None)
        assert calls[0] == 1

    def test_budget_exhaustion_reraises_last(self):
        calls = [0]

        def always_flaky():
            calls[0] += 1
            raise ConnectionResetError(f"attempt {calls[0]}")

        with pytest.raises(ConnectionResetError, match="attempt 3"):
            retry_call(always_flaky, retries=2, backoff=0.0, sleep=lambda s: None)
        assert calls[0] == 3

    def test_on_retry_hook(self):
        seen: list[tuple[BaseException, int, float]] = []
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] == 1:
                raise TimeoutError()
            return "done"

        retry_call(
            flaky,
            retries=2,
            backoff=0.25,
            sleep=lambda s: None,
            on_retry=lambda exc, attempt, delay: seen.append((exc, attempt, delay)),
        )
        assert len(seen) == 1
        exc, attempt, delay = seen[0]
        assert isinstance(exc, TimeoutError) and attempt == 1 and delay == 0.25

    def test_kill_escapes_retry(self):
        """InjectedKill is a BaseException: it must blow straight through
        the retry loop like a real SIGKILL would."""
        calls = [0]

        def killed():
            calls[0] += 1
            raise InjectedKill("shard.compute", 0, None)

        with pytest.raises(InjectedKill):
            retry_call(killed, retries=5, backoff=0.0, sleep=lambda s: None)
        assert calls[0] == 1


class TestEnvActivation:
    def test_env_plan_activates(self, monkeypatch):
        plan_json = FaultPlan([FaultSpec(site="shard.route", kind="kill")]).to_json()
        monkeypatch.setenv(faults.ENV_VAR, plan_json)
        faults.deactivate()  # force re-read of the env
        try:
            with pytest.raises(InjectedKill):
                faults.trip("shard.route", superstep=0)
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            faults.deactivate()
