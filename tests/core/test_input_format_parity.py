"""Union-vs-join worker-input parity across *all* shipped programs.

The batch/scalar compute axis is pinned by ``test_batch_parity``; this
suite pins the other data-plane axis: the ``union`` input format (the
paper's Table Unions optimization, with and without the cross-superstep
edge cache) and the naive three-way ``join`` foil must decode into
identical per-vertex context, so every program must produce identical
values, aggregates, and superstep behavior on both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Vertexica, VertexicaConfig
from repro.programs import (
    AdaptivePageRank,
    CollaborativeFiltering,
    ConnectedComponents,
    InDegree,
    LabelPropagation,
    OutDegree,
    PageRank,
    RandomWalkWithRestart,
    ShortestPaths,
)

#: (program factory, needs_symmetrized_edges, matching_graph) — every
#: program in ``repro.programs``; keep in sync with its ``__all__``.
#:
#: ``matching_graph=True`` runs on a perfect-matching graph (every vertex
#: has exactly one neighbor, hence at most one incoming message).
#: CollaborativeFiltering applies SGD steps *sequentially per message*,
#: and Pregel guarantees delivery, not order — the two input formats
#: deliver multi-message batches in different orders (union:
#: message-table scan order; join: sorted by sender id), which is allowed
#: to change SGD trajectories.  One message per vertex removes the only
#: legal divergence, so the decode parity check stays bit-exact while
#: still exercising the JSON/VARCHAR codec path through both formats
#: (the join format cannot carry vector-codec payloads, so CF runs its
#: ``codec="json"`` ablation here; the vector path's cross-plane parity
#: lives in ``test_batch_parity.TestShardPlaneParity``).
ALL_PROGRAMS = [
    pytest.param(lambda: PageRank(iterations=5), False, False, id="pagerank"),
    pytest.param(
        lambda: AdaptivePageRank(epsilon=1e-4), False, False, id="adaptive-pagerank"
    ),
    pytest.param(lambda: ShortestPaths(source=0), False, False, id="sssp"),
    pytest.param(lambda: ConnectedComponents(), True, False, id="components"),
    pytest.param(
        lambda: CollaborativeFiltering(iterations=4, rank=4, codec="json"),
        True,
        True,
        id="collab-filter",
    ),
    pytest.param(
        lambda: RandomWalkWithRestart(source=2, iterations=5), False, False, id="rwr"
    ),
    pytest.param(lambda: InDegree(), False, False, id="in-degree"),
    pytest.param(lambda: OutDegree(), False, False, id="out-degree"),
    pytest.param(lambda: LabelPropagation(iterations=4), True, False, id="label-prop"),
]


def _graph_data(matching: bool):
    if matching:
        # 30 disjoint user-item pairs with rating-like weights.
        src = np.arange(0, 60, 2, dtype=np.int64)
        dst = src + 1
        weights = 1.0 + (np.arange(30, dtype=np.float64) % 9) / 2.0
        return src, dst, weights
    # A *simple* graph (no duplicate edges): the naive three-way join
    # cannot represent parallel edges — one row per (edge x message)
    # combination collapses equal (src, dst) pairs — so the paper's foil
    # is only meaningful on deduplicated edge lists.
    from repro.datasets.generators import power_law_graph

    g = power_law_graph("g", 90, 450, seed=23, weighted=True)
    return g.src, g.dst, g.weights


def run_with(
    input_strategy: str, program_factory, symmetrize: bool, matching: bool = False, **cfg
):
    src, dst, weights = _graph_data(matching)
    cfg.setdefault("n_partitions", 4)
    vx = Vertexica(config=VertexicaConfig(input_strategy=input_strategy, **cfg))
    # Padding ids create isolated vertices in both formats.
    graph = vx.load_graph(
        "g",
        src,
        dst,
        weights=weights,
        num_vertices=(66 if matching else 96),
        symmetrize=symmetrize,
    )
    return vx.run(graph, program_factory())


def assert_runs_identical(left, right):
    assert left.values == right.values  # bit-identical, not approximate
    l_steps, r_steps = left.stats.supersteps, right.stats.supersteps
    assert len(l_steps) == len(r_steps)
    for l, r in zip(l_steps, r_steps):
        assert l.active_vertices == r.active_vertices
        assert l.messages_in == r.messages_in
        assert l.messages_out == r.messages_out
        assert l.vertex_updates == r.vertex_updates
        assert l.aggregated == r.aggregated


class TestUnionVsJoinAllPrograms:
    @pytest.mark.parametrize("program_factory,symmetrize,matching", ALL_PROGRAMS)
    def test_formats_agree(self, program_factory, symmetrize, matching):
        union = run_with("union", program_factory, symmetrize, matching)
        join = run_with("join", program_factory, symmetrize, matching)
        assert_runs_identical(union, join)

    @pytest.mark.parametrize("program_factory,symmetrize,matching", ALL_PROGRAMS)
    def test_union_edge_cache_is_transparent(
        self, program_factory, symmetrize, matching
    ):
        """cache_edges only skips redundant work — never changes results."""
        cached = run_with(
            "union", program_factory, symmetrize, matching, cache_edges=True
        )
        uncached = run_with(
            "union", program_factory, symmetrize, matching, cache_edges=False
        )
        assert_runs_identical(cached, uncached)

    def test_cached_union_reads_fewer_rows(self):
        cached = run_with("union", lambda: PageRank(iterations=5), False)
        uncached = run_with(
            "union", lambda: PageRank(iterations=5), False, cache_edges=False
        )
        # Superstep 0 decodes (and caches) the edge relation...
        assert cached.stats.supersteps[0].rows_in == uncached.stats.supersteps[0].rows_in
        # ...after which the edge rows disappear from the worker input.
        for c, u in zip(cached.stats.supersteps[1:], uncached.stats.supersteps[1:]):
            assert c.rows_in < u.rows_in


class TestEdgeCacheEmptyPartitions:
    def test_ghost_message_to_vertexless_bucket(self):
        """A message to a nonexistent id can hash to a bucket that held no
        rows at superstep 0 (hence no cache entry); the cached decode must
        drop it like the uncached path does, not crash."""
        from repro.core.program import VertexProgram

        class GhostToEmptyBucket(VertexProgram):
            combiner = None

            def initial_value(self, vertex_id, out_degree, num_vertices):
                return float(vertex_id)

            def compute(self, vertex):
                if vertex.superstep == 0:
                    # Vertices are 0..2; with n_partitions=4 bucket 3 has no
                    # vertex rows, and 7 % 4 == 3.
                    vertex.send_message(7, 1.0)
                else:
                    vertex.modify_vertex_value(float(sum(vertex.messages)))
                vertex.vote_to_halt()

        results = {}
        for cached in (True, False):
            vx = Vertexica(
                config=VertexicaConfig(n_partitions=4, cache_edges=cached)
            )
            graph = vx.load_graph("g", [0, 1], [1, 2], num_vertices=3)
            results[cached] = vx.run(graph, GhostToEmptyBucket())
        assert results[True].values == results[False].values == {0: 0.0, 1: 1.0, 2: 2.0}
