"""Shard-resident data plane: sync-policy observability and plumbing.

Bit-identity of *results* across planes lives in
``test_batch_parity.TestShardPlaneParity``; this module pins the
relational-interop contract of ``superstep_sync``:

* ``"every"`` — after every superstep the vertex/message tables hold
  exactly what the legacy SQL plane would have left there (checked by
  truncating runs at each superstep via ``max_supersteps``);
* ``"halt"`` — the tables are written exactly once, at completion, and
  the final relations plus the ``VertexicaResult`` are bit-identical to
  the legacy plane's.

Plus: the coordinator's persistent thread pool (one pool per run, not
per superstep) and the shard partitioning invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Vertexica, VertexicaConfig
from repro.core.shards import ShardedDataPlane
from repro.core.storage import GraphStorage
from repro.engine.parallel import ThreadExecutor, make_thread_executor, serial_executor
from repro.programs import ConnectedComponents, LabelPropagation, PageRank, ShortestPaths


def small_graph(seed: int = 11, n: int = 60, m: int = 300):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, m), rng.integers(0, n, m), rng.uniform(0.5, 3.0, m)


def run_plane(data_plane: str, program, symmetrize: bool = False, **cfg):
    src, dst, weights = small_graph()
    cfg.setdefault("n_partitions", 4)
    vx = Vertexica(config=VertexicaConfig(data_plane=data_plane, **cfg))
    graph = vx.load_graph(
        "g", src, dst, weights=weights, num_vertices=64, symmetrize=symmetrize
    )
    result = vx.run(graph, program)
    return vx, graph, result


def vertex_rows(vx: Vertexica):
    return vx.sql("SELECT id, value, halted FROM g_vertex ORDER BY id").rows()


def message_rows(vx: Vertexica):
    return vx.sql(
        "SELECT src, dst, value FROM g_message ORDER BY dst, src, value"
    ).rows()


class TestEverySyncObservability:
    """Under ``superstep_sync="every"`` the SQL-visible tables match the
    legacy plane after *each* superstep, not just at the end."""

    @pytest.mark.parametrize("cap", [1, 2, 3, 5])
    def test_tables_match_legacy_at_every_superstep(self, cap):
        # Truncating the run at superstep `cap` exposes the mid-run table
        # state both planes leave behind.
        sql_vx, _, sql_result = run_plane(
            "sql", PageRank(iterations=6), max_supersteps=cap
        )
        shard_vx, _, shard_result = run_plane(
            "shards",
            PageRank(iterations=6),
            max_supersteps=cap,
            superstep_sync="every",
        )
        assert sql_result.stats.n_supersteps == shard_result.stats.n_supersteps == cap
        assert vertex_rows(shard_vx) == vertex_rows(sql_vx)
        assert message_rows(shard_vx) == message_rows(sql_vx)

    def test_uncombined_message_table_matches(self):
        sql_vx, _, _ = run_plane(
            "sql", LabelPropagation(iterations=4), True, max_supersteps=2
        )
        shard_vx, _, _ = run_plane(
            "shards",
            LabelPropagation(iterations=4),
            True,
            max_supersteps=2,
            superstep_sync="every",
        )
        assert message_rows(shard_vx) == message_rows(sql_vx)
        assert vertex_rows(shard_vx) == vertex_rows(sql_vx)

    def test_table_written_every_superstep(self):
        vx, graph, result = run_plane(
            "shards", PageRank(iterations=4), superstep_sync="every"
        )
        # One replace_data per superstep (version starts at 0 on CREATE;
        # setup inserts bump the vertex table once more).
        assert vx.db.table(graph.message_table).version == result.stats.n_supersteps


class TestHaltSyncObservability:
    """Under ``superstep_sync="halt"`` the tables are written once, at
    completion — and the final state is still bit-identical."""

    def test_final_tables_and_result_bit_identical(self):
        sql_vx, _, sql_result = run_plane("sql", ShortestPaths(source=0))
        shard_vx, _, shard_result = run_plane(
            "shards", ShortestPaths(source=0), superstep_sync="halt"
        )
        assert shard_result.values == sql_result.values  # bit-identical
        assert vertex_rows(shard_vx) == vertex_rows(sql_vx)
        assert message_rows(shard_vx) == message_rows(sql_vx) == []

    def test_pending_messages_materialize_on_capped_runs(self):
        # A superstep cap stops the run with messages still in flight;
        # the halt sync must materialize them for relational consumers.
        sql_vx, _, _ = run_plane("sql", PageRank(iterations=6), max_supersteps=3)
        shard_vx, _, _ = run_plane(
            "shards",
            PageRank(iterations=6),
            max_supersteps=3,
            superstep_sync="halt",
        )
        rows = message_rows(shard_vx)
        assert rows and rows == message_rows(sql_vx)

    def test_tables_written_exactly_once(self):
        vx, graph, result = run_plane(
            "shards", PageRank(iterations=5), superstep_sync="halt"
        )
        assert result.stats.n_supersteps == 6
        # CREATE leaves version 0; the single halt sync bumps it to 1.
        assert vx.db.table(graph.message_table).version == 1
        # setup_run's initial load is version 1; halt sync makes 2.
        assert vx.db.table(graph.vertex_table).version == 2

    def test_values_via_result_match_halt_tables(self):
        vx, _, result = run_plane(
            "shards", ConnectedComponents(), True, superstep_sync="halt"
        )
        from_table = {vid: value for vid, value, _ in vertex_rows(vx)}
        assert from_table == result.values


class TestShardPartitioning:
    def test_vid_hash_layout(self):
        vx = Vertexica()
        src, dst, weights = small_graph()
        graph = vx.load_graph("g", src, dst, weights=weights, num_vertices=64)
        storage = GraphStorage(vx.db)
        storage.setup_run(graph, PageRank(iterations=1))
        plane = ShardedDataPlane(storage, graph, PageRank(iterations=1), 4, True)
        assert len(plane.shards) == 4
        seen = 0
        for shard in plane.shards:
            ids = shard.vertex_ids
            assert np.all(ids % 4 == shard.index)
            assert np.all(np.diff(ids) > 0)  # sorted, unique
            # CSR edges aligned to the shard's vertices
            assert len(shard.edge_indptr) == len(ids) + 1
            assert shard.edge_indptr[-1] == len(shard.edge_targets)
            seen += len(ids)
        assert seen == graph.num_vertices

    def test_edge_table_mutated_by_sql_dml(self):
        """SQL DML can append edge rows out of canonical (src-sorted)
        order between load_graph and run; the shard CSR build must sort
        within buckets or it silently mis-assigns edges (the SQL plane
        re-sorts every superstep, so it is naturally immune)."""
        src, dst, weights = small_graph()
        results = {}
        for plane in ("sql", "shards"):
            vx = Vertexica(config=VertexicaConfig(data_plane=plane, n_partitions=4))
            vx.load_graph("g", src, dst, weights=weights, num_vertices=64)
            # Appends rows whose src is far below the tail of the table.
            vx.sql("INSERT INTO g_edge VALUES (0, 5, 1.0), (4, 1, 2.0), (0, 9, 1.0)")
            graph = vx.graph("g")
            results[plane] = vx.run(graph, PageRank(iterations=5))
        assert results["shards"].values == results["sql"].values

    def test_shard_metrics_recorded(self):
        _, _, result = run_plane("shards", PageRank(iterations=3))
        for step in result.stats.supersteps:
            assert len(step.shard_seconds) == 4
            assert step.update_path in ("memory", "none")
            assert step.shard_balance >= 1.0
        # default sync policy is "every": sync time is tracked
        assert all(s.sync_seconds >= 0.0 for s in result.stats.supersteps)

    def test_halt_skips_sync_cost(self):
        _, _, result = run_plane(
            "shards", PageRank(iterations=3), superstep_sync="halt"
        )
        assert all(s.sync_seconds == 0.0 for s in result.stats.supersteps)


class TestPersistentThreadPool:
    def test_pool_reused_across_calls(self):
        executor = make_thread_executor(2)
        tasks = [(i, i) for i in range(4)]
        assert executor(lambda item, index: item * 2, tasks) == [0, 2, 4, 6]
        pool = executor._pool
        assert pool is not None
        executor(lambda item, index: item, tasks)
        assert executor._pool is pool  # same pool, not a fresh one per call
        executor.close()
        assert executor._pool is None

    def test_close_is_idempotent_and_reusable(self):
        executor = make_thread_executor(3)
        executor.close()
        executor.close()
        tasks = [(i, i) for i in range(3)]
        assert executor(lambda item, index: item + 1, tasks) == [1, 2, 3]
        executor.close()

    def test_context_manager(self):
        with make_thread_executor(2) as executor:
            assert isinstance(executor, ThreadExecutor)
            out = executor(lambda item, index: index, [(None, 0), (None, 1)])
        assert out == [0, 1]
        assert executor._pool is None

    def test_single_task_stays_serial(self):
        executor = make_thread_executor(4)
        assert executor(lambda item, index: item, [(7, 0)]) == [7]
        assert executor._pool is None  # no pool spawned for serial work

    def test_serial_executor_unchanged(self):
        assert serial_executor(lambda item, index: (item, index), [(5, 0), (6, 1)]) == [
            (5, 0),
            (6, 1),
        ]
