"""Tests for the relational graph storage layer."""

import pytest

from repro.core.storage import GraphStorage
from repro.engine import Database
from repro.errors import GraphLoadError
from repro.programs import ConnectedComponents, PageRank


@pytest.fixture
def storage(db: Database) -> GraphStorage:
    return GraphStorage(db)


class TestLoadGraph:
    def test_creates_edge_and_node_tables(self, storage, db):
        handle = storage.load_graph("g", [0, 1], [1, 2])
        assert db.has_table("g_edge") and db.has_table("g_node")
        assert handle.num_vertices == 3
        assert handle.num_edges == 2

    def test_num_vertices_adds_isolated(self, storage):
        handle = storage.load_graph("g", [0], [1], num_vertices=5)
        assert handle.num_vertices == 5

    def test_default_weights_are_one(self, storage, db):
        storage.load_graph("g", [0], [1])
        assert db.execute("SELECT weight FROM g_edge").scalar() == 1.0

    def test_reload_replaces(self, storage, db):
        storage.load_graph("g", [0, 1], [1, 2])
        handle = storage.load_graph("g", [5], [6])
        assert handle.num_edges == 1

    def test_bad_name_rejected(self, storage):
        with pytest.raises(GraphLoadError, match="identifier"):
            storage.load_graph("bad name!", [0], [1])

    def test_ragged_arrays_rejected(self, storage):
        with pytest.raises(GraphLoadError, match="differ in length"):
            storage.load_graph("g", [0, 1], [1])

    def test_negative_ids_rejected(self, storage):
        with pytest.raises(GraphLoadError, match="non-negative"):
            storage.load_graph("g", [-1], [1])

    def test_handle_reattach(self, storage):
        storage.load_graph("g", [0, 1], [1, 2])
        handle = storage.handle("g")
        assert handle.num_vertices == 3

    def test_handle_unknown_graph(self, storage):
        with pytest.raises(GraphLoadError, match="not loaded"):
            storage.handle("ghost")


class TestSetupRun:
    def test_vertex_table_types_follow_codec(self, storage, db):
        handle = storage.load_graph("g", [0, 1], [1, 2])
        storage.setup_run(handle, PageRank(iterations=2))
        assert db.table("g_vertex").schema.column("value").dtype.name == "FLOAT"
        storage.setup_run(handle, ConnectedComponents())
        assert db.table("g_vertex").schema.column("value").dtype.name == "INTEGER"

    def test_initial_values_computed(self, storage, db):
        handle = storage.load_graph("g", [0, 1], [1, 2], num_vertices=4)
        storage.setup_run(handle, PageRank(iterations=2))
        values = db.execute("SELECT value FROM g_vertex").column("value")
        assert all(v == pytest.approx(0.25) for v in values)

    def test_no_vertex_starts_halted(self, storage, db):
        handle = storage.load_graph("g", [0], [1])
        storage.setup_run(handle, PageRank(iterations=1))
        assert db.execute(
            "SELECT COUNT(*) FROM g_vertex WHERE halted"
        ).scalar() == 0

    def test_out_degrees(self, storage):
        handle = storage.load_graph("g", [0, 0, 1], [1, 2, 2], num_vertices=4)
        degrees = storage.out_degrees(handle)
        assert degrees == {0: 2, 1: 1}


class TestInputSql:
    def test_union_input_has_all_three_kinds(self, storage, db):
        handle = storage.load_graph("g", [0, 1], [1, 0])
        program = PageRank(iterations=1)
        storage.setup_run(handle, program)
        db.execute("INSERT INTO g_message VALUES (0, 1, 0.5)")
        batch = db.query_batch(storage.union_input_sql(handle, program))
        kinds = sorted(set(batch.column("kind").to_list()))
        assert kinds == [0, 1, 2]
        assert batch.num_rows == 2 + 2 + 1

    def test_join_input_row_count_is_product(self, storage, db):
        # vertex 0 has 2 out-edges and 2 incoming messages -> 4 combo rows.
        handle = storage.load_graph("g", [0, 0], [1, 2], num_vertices=3)
        storage.setup_run(handle, PageRank(iterations=1))
        db.execute("INSERT INTO g_message VALUES (1, 0, 0.5), (2, 0, 0.25)")
        batch = db.query_batch(storage.join_input_sql(handle))
        zero_rows = [r for r in batch.to_rows() if r[0] == 0]
        assert len(zero_rows) == 4
        # vertices with no edges/messages still appear once
        one_rows = [r for r in batch.to_rows() if r[0] == 1]
        assert len(one_rows) == 1
