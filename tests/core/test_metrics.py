"""Tests for run metrics containers."""

from repro.core.metrics import RunStats, SuperstepStats


def make_step(i: int, **overrides) -> SuperstepStats:
    defaults = dict(
        superstep=i,
        active_vertices=10,
        messages_in=5,
        messages_out=7,
        vertex_updates=10,
        update_path="replace",
        seconds=0.5,
    )
    defaults.update(overrides)
    return SuperstepStats(**defaults)


class TestRunStats:
    def test_totals(self):
        stats = RunStats(program="P", graph="g")
        stats.supersteps = [make_step(0), make_step(1, messages_out=3)]
        stats.total_seconds = 1.25
        assert stats.n_supersteps == 2
        assert stats.total_messages == 10
        assert stats.total_vertex_updates == 20

    def test_summary_mentions_key_facts(self):
        stats = RunStats(program="PageRank", graph="twitter")
        stats.supersteps = [make_step(0)]
        stats.total_seconds = 2.0
        text = stats.summary()
        assert "PageRank" in text and "twitter" in text
        assert "1 supersteps" in text and "2.000s" in text

    def test_empty_run(self):
        stats = RunStats(program="P", graph="g")
        assert stats.n_supersteps == 0
        assert stats.total_messages == 0

    def test_superstep_stats_frozen(self):
        step = make_step(0)
        try:
            step.seconds = 1.0
            raised = False
        except Exception:
            raised = True
        assert raised

    def test_aggregated_defaults_empty(self):
        assert make_step(0).aggregated == ()
