"""Tests for run metrics containers."""

from repro.core.metrics import RunStats, SuperstepStats


def make_step(i: int, **overrides) -> SuperstepStats:
    defaults = dict(
        superstep=i,
        active_vertices=10,
        messages_in=5,
        messages_out=7,
        vertex_updates=10,
        update_path="replace",
        seconds=0.5,
    )
    defaults.update(overrides)
    return SuperstepStats(**defaults)


class TestRunStats:
    def test_totals(self):
        stats = RunStats(program="P", graph="g")
        stats.supersteps = [make_step(0), make_step(1, messages_out=3)]
        stats.total_seconds = 1.25
        assert stats.n_supersteps == 2
        assert stats.total_messages == 10
        assert stats.total_vertex_updates == 20

    def test_summary_mentions_key_facts(self):
        stats = RunStats(program="PageRank", graph="twitter")
        stats.supersteps = [make_step(0)]
        stats.total_seconds = 2.0
        text = stats.summary()
        assert "PageRank" in text and "twitter" in text
        assert "1 supersteps" in text and "2.000s" in text

    def test_empty_run(self):
        stats = RunStats(program="P", graph="g")
        assert stats.n_supersteps == 0
        assert stats.total_messages == 0

    def test_superstep_stats_frozen(self):
        step = make_step(0)
        try:
            step.seconds = 1.0
            raised = False
        except Exception:
            raised = True
        assert raised

    def test_aggregated_defaults_empty(self):
        assert make_step(0).aggregated == ()


class TestThroughput:
    def test_superstep_rates(self):
        step = make_step(0, rows_in=1000, rows_out=400, seconds=0.5)
        assert step.vertices_per_sec == 20.0
        assert step.rows_per_sec == 2000.0

    def test_zero_seconds_rates(self):
        step = make_step(0, seconds=0.0)
        assert step.vertices_per_sec == 0.0
        assert step.rows_per_sec == 0.0

    def test_run_totals_and_rates(self):
        stats = RunStats(program="P", graph="g")
        stats.supersteps = [
            make_step(0, rows_in=100, rows_out=60, seconds=0.5),
            make_step(1, rows_in=300, rows_out=40, seconds=0.5),
        ]
        assert stats.total_rows_in == 400
        assert stats.total_rows_out == 100
        assert stats.rows_per_sec == 400.0
        assert stats.vertices_per_sec == 20.0

    def test_summary_includes_throughput(self):
        stats = RunStats(program="P", graph="g")
        stats.supersteps = [make_step(0, rows_in=1000, seconds=0.5)]
        assert "vertices/s" in stats.summary() and "rows/s" in stats.summary()

    def test_summary_omits_throughput_without_rows(self):
        stats = RunStats(program="P", graph="g")
        stats.supersteps = [make_step(0)]
        assert "vertices/s" not in stats.summary()

    def test_breakdown_lists_each_superstep(self):
        stats = RunStats(program="P", graph="g")
        stats.supersteps = [
            make_step(0, compute_path="batch"),
            make_step(1, compute_path="batch"),
        ]
        text = stats.breakdown()
        assert "batch" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 steps

    def test_compute_path_default_scalar(self):
        assert make_step(0).compute_path == "scalar"
