"""Tests for value codecs and the Vertexica configuration."""

import numpy as np
import pytest

from repro.core.codecs import FLOAT_CODEC, INTEGER_CODEC, JSON_CODEC, vector_codec
from repro.core.config import VertexicaConfig
from repro.engine.types import FLOAT, INTEGER, VARCHAR
from repro.errors import ProgramError, VertexicaError


class TestCodecs:
    def test_float_codec(self):
        assert FLOAT_CODEC.sql_type is FLOAT
        assert FLOAT_CODEC.encode_or_none(3) == 3.0
        assert FLOAT_CODEC.decode_or_none(3.5) == 3.5

    def test_integer_codec(self):
        assert INTEGER_CODEC.sql_type is INTEGER
        assert INTEGER_CODEC.encode_or_none(7.0) == 7

    def test_json_codec_roundtrip(self):
        assert JSON_CODEC.sql_type is VARCHAR
        payload = {"vector": [1.0, 2.5], "id": 3}
        encoded = JSON_CODEC.encode_or_none(payload)
        assert isinstance(encoded, str)
        assert JSON_CODEC.decode_or_none(encoded) == payload

    def test_none_maps_to_null_both_ways(self):
        for codec in (FLOAT_CODEC, INTEGER_CODEC, JSON_CODEC, vector_codec(3)):
            assert codec.encode_or_none(None) is None
            assert codec.decode_or_none(None) is None

    def test_scalar_codecs_are_not_vectors(self):
        for codec in (FLOAT_CODEC, INTEGER_CODEC, JSON_CODEC):
            assert not codec.is_vector
            assert codec.width == 0
            assert codec.column_names() == ("value",)


class TestVectorCodec:
    def test_declaration(self):
        codec = vector_codec(4)
        assert codec.is_vector and codec.width == 4
        assert codec.sql_type is FLOAT
        assert codec.column_names() == ("v0", "v1", "v2", "v3")
        assert vector_codec(4) is codec  # cached per width

    def test_invalid_width_rejected(self):
        with pytest.raises(ProgramError):
            vector_codec(0)
        with pytest.raises(ProgramError):
            vector_codec(-3)

    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_scalar_roundtrip_is_bit_exact(self, width):
        codec = vector_codec(width)
        rng = np.random.default_rng(width)
        value = rng.standard_normal(width).tolist()
        encoded = codec.encode_or_none(value)
        assert isinstance(encoded, np.ndarray) and encoded.shape == (width,)
        assert codec.decode_or_none(encoded) == value  # exact, no serialization

    def test_width_mismatch_rejected(self):
        codec = vector_codec(3)
        with pytest.raises(ProgramError):
            codec.encode([1.0, 2.0])
        with pytest.raises(ProgramError):
            codec.encode([1.0, 2.0, 3.0, 4.0])
        with pytest.raises(ProgramError):
            codec.encode(2.5)

    @pytest.mark.parametrize("width", [1, 2, 5])
    def test_array_roundtrip_property(self, width):
        # decode_array(encode_array(x)) == x for random partitions.
        codec = vector_codec(width)
        rng = np.random.default_rng(17 * width)
        values = rng.standard_normal((23, width))
        valid = rng.random(23) > 0.3
        encoded = codec.encode_array(values, valid)
        decoded = codec.decode_array(encoded, valid)
        assert decoded.shape == (23, width)
        assert np.array_equal(decoded[valid], values[valid])

    def test_decode_list_maps_nulls_to_none(self):
        codec = vector_codec(2)
        values = np.array([[1.0, 2.0], [0.0, 0.0], [3.0, 4.0]])
        valid = np.array([True, False, True])
        assert codec.decode_list(values, valid) == [[1.0, 2.0], None, [3.0, 4.0]]

    def test_empty_partition(self):
        codec = vector_codec(6)
        empty = np.empty((0, 6), dtype=np.float64)
        no_rows = np.empty(0, dtype=bool)
        assert codec.decode_array(empty, no_rows).shape == (0, 6)
        assert codec.encode_array(empty, no_rows).shape == (0, 6)
        assert codec.decode_list(empty, no_rows) == []

    def test_flat_empty_input_normalizes_shape(self):
        # Concatenations of zero chunks can degrade to 1-D empties; the
        # codec reshapes them back to (0, k).
        codec = vector_codec(4)
        flat = np.empty(0, dtype=np.float64)
        assert codec.decode_array(flat, np.empty(0, dtype=bool)).shape == (0, 4)


class TestConfig:
    def test_defaults_valid(self):
        config = VertexicaConfig().validated()
        assert config.input_strategy == "union"
        assert config.update_strategy == "auto"

    def test_with_overrides(self):
        config = VertexicaConfig().with_overrides(n_partitions=16, n_workers=2)
        assert config.n_partitions == 16 and config.n_workers == 2

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_partitions", 0),
            ("n_workers", 0),
            ("input_strategy", "magic"),
            ("update_strategy", "yolo"),
            ("replace_threshold", 1.5),
            ("replace_threshold", -0.1),
            ("max_supersteps", 0),
        ],
    )
    def test_invalid_settings_rejected(self, field, value):
        with pytest.raises(VertexicaError):
            VertexicaConfig(**{field: value}).validated()

    def test_frozen(self):
        config = VertexicaConfig()
        with pytest.raises(Exception):
            config.n_workers = 5
