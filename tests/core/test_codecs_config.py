"""Tests for value codecs and the Vertexica configuration."""

import pytest

from repro.core.codecs import FLOAT_CODEC, INTEGER_CODEC, JSON_CODEC
from repro.core.config import VertexicaConfig
from repro.engine.types import FLOAT, INTEGER, VARCHAR
from repro.errors import VertexicaError


class TestCodecs:
    def test_float_codec(self):
        assert FLOAT_CODEC.sql_type is FLOAT
        assert FLOAT_CODEC.encode_or_none(3) == 3.0
        assert FLOAT_CODEC.decode_or_none(3.5) == 3.5

    def test_integer_codec(self):
        assert INTEGER_CODEC.sql_type is INTEGER
        assert INTEGER_CODEC.encode_or_none(7.0) == 7

    def test_json_codec_roundtrip(self):
        assert JSON_CODEC.sql_type is VARCHAR
        payload = {"vector": [1.0, 2.5], "id": 3}
        encoded = JSON_CODEC.encode_or_none(payload)
        assert isinstance(encoded, str)
        assert JSON_CODEC.decode_or_none(encoded) == payload

    def test_none_maps_to_null_both_ways(self):
        for codec in (FLOAT_CODEC, INTEGER_CODEC, JSON_CODEC):
            assert codec.encode_or_none(None) is None
            assert codec.decode_or_none(None) is None


class TestConfig:
    def test_defaults_valid(self):
        config = VertexicaConfig().validated()
        assert config.input_strategy == "union"
        assert config.update_strategy == "auto"

    def test_with_overrides(self):
        config = VertexicaConfig().with_overrides(n_partitions=16, n_workers=2)
        assert config.n_partitions == 16 and config.n_workers == 2

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_partitions", 0),
            ("n_workers", 0),
            ("input_strategy", "magic"),
            ("update_strategy", "yolo"),
            ("replace_threshold", 1.5),
            ("replace_threshold", -0.1),
            ("max_supersteps", 0),
        ],
    )
    def test_invalid_settings_rejected(self, field, value):
        with pytest.raises(VertexicaError):
            VertexicaConfig(**{field: value}).validated()

    def test_frozen(self):
        config = VertexicaConfig()
        with pytest.raises(Exception):
            config.n_workers = 5
